#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "util/rng.h"

namespace dbgp::util {

namespace {

// True while this thread is executing a pool task (worker or participating
// caller). A nested parallel_for from such a thread runs inline: its chunks
// must not queue behind the very job they are part of.
thread_local bool t_inside_task = false;

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t split_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // Offset by the golden-ratio increment so (base, 0) != (base + 1, ...)
  // collisions require two full SplitMix64 avalanches to line up.
  std::uint64_t state = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  return a ^ (b + 0x9e3779b97f4a7c15ULL);
}

struct ThreadPool::Job {
  std::atomic<std::size_t> next{0};         // next index to claim
  std::size_t end = 0;
  std::size_t chunk = 1;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> chunks_left{0};  // chunks not yet fully executed
  // Participation tickets, one per worker deliberately woken. A worker that
  // reaches the job without winning a ticket (spurious or late wakeup) goes
  // back to sleep instead of joining, so the "wake only what can work"
  // discipline holds deterministically, not just usually.
  std::atomic<std::int64_t> tickets{0};
  std::size_t active = 0;                   // workers inside run_chunks; guarded by pool mu_
  std::uint64_t published_ns = 0;           // when the job became visible
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;                 // guarded by error_mu
};

std::size_t ThreadPool::resolve_threads(std::size_t requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t total = resolve_threads(threads);
  workers_.reserve(total - 1);
  for (std::size_t i = 0; i + 1 < total; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::set_wait_observer(WaitObserver observer) {
  std::lock_guard<std::mutex> lk(mu_);
  wait_observer_ = std::move(observer);
}

void ThreadPool::set_stage_observer(StageObserver observer) {
  std::lock_guard<std::mutex> lk(mu_);
  stage_observer_ = std::move(observer);
}

void ThreadPool::parallel_for_stage(const char* stage, std::size_t begin,
                                    std::size_t end, std::size_t chunk,
                                    const std::function<void(std::size_t)>& fn) {
  StageObserver observer;
  {
    std::lock_guard<std::mutex> lk(mu_);
    observer = stage_observer_;
  }
  if (!observer) {
    parallel_for(begin, end, chunk, fn);
    return;
  }
  const std::uint64_t start_ns = now_ns();
  parallel_for(begin, end, chunk, fn);
  observer(stage, now_ns() - start_ns);
}

ThreadPool::Stats ThreadPool::stats() const noexcept {
  return {tasks_.load(std::memory_order_relaxed),
          wakeups_.load(std::memory_order_relaxed),
          wait_ns_.load(std::memory_order_relaxed)};
}

ThreadPool::Stats ThreadPool::snapshot_and_reset() noexcept {
  return {tasks_.exchange(0, std::memory_order_relaxed),
          wakeups_.exchange(0, std::memory_order_relaxed),
          wait_ns_.exchange(0, std::memory_order_relaxed)};
}

void ThreadPool::worker_loop() {
  t_inside_task = true;  // nested parallel_for from a task runs inline
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    std::uint64_t waited_ns = 0;
    WaitObserver observer;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] {
        return stop_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
      if (job->tickets.fetch_sub(1, std::memory_order_relaxed) <= 0) continue;
      ++job->active;
      waited_ns = now_ns() - job->published_ns;
      observer = wait_observer_;
    }
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    wait_ns_.fetch_add(waited_ns, std::memory_order_relaxed);
    if (observer) observer(waited_ns);

    run_chunks(*job);

    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--job->active == 0 &&
          job->chunks_left.load(std::memory_order_acquire) == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::size_t start = job.next.fetch_add(job.chunk, std::memory_order_relaxed);
    if (start >= job.end) return;
    const std::size_t stop = std::min(start + job.chunk, job.end);
    // After a failure the remaining chunks are drained without running: the
    // caller rethrows the first error, partial results are discarded anyway,
    // and draining (rather than abandoning) keeps completion tracking exact.
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = start; i < stop; ++i) (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(job.error_mu);
        if (!job.error) job.error = std::current_exception();
        job.failed.store(true, std::memory_order_relaxed);
      }
    }
    tasks_.fetch_add(1, std::memory_order_relaxed);
    job.chunks_left.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;  // empty range: nothing to do, nobody to wake
  const std::size_t count = end - begin;
  if (chunk == 0) {
    // Aim for ~4 chunks per thread so a slow chunk cannot stall the tail.
    chunk = std::max<std::size_t>(1, count / (size() * 4));
  }
  const std::size_t n_chunks = (count + chunk - 1) / chunk;

  // Inline fast path: nested call from inside a task (deadlock guard),
  // single-threaded pool, or a range that fits in one chunk. Runs in index
  // order; identical results by the pre-sized-slot contract.
  if (t_inside_task || workers_.empty() || n_chunks == 1) {
    const bool was_inside = t_inside_task;
    t_inside_task = true;
    try {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    } catch (...) {
      t_inside_task = was_inside;
      tasks_.fetch_add(n_chunks, std::memory_order_relaxed);
      throw;
    }
    t_inside_task = was_inside;
    tasks_.fetch_add(n_chunks, std::memory_order_relaxed);
    return;
  }

  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.chunk = chunk;
  job.fn = &fn;
  job.chunks_left.store(n_chunks, std::memory_order_relaxed);
  job.published_ns = now_ns();
  // Wake only as many workers as there are chunks beyond the caller's own
  // share — a pool wider than the task list leaves the surplus asleep.
  // Tickets are set before the job becomes visible: a worker that reaches
  // the job first must still find its ticket there.
  const std::size_t to_wake = std::min(workers_.size(), n_chunks - 1);
  job.tickets.store(static_cast<std::int64_t>(to_wake), std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &job;
    ++generation_;
  }
  if (to_wake == workers_.size()) {
    work_cv_.notify_all();
  } else {
    for (std::size_t i = 0; i < to_wake; ++i) work_cv_.notify_one();
  }

  // The caller participates under the same inline guard as workers.
  t_inside_task = true;
  run_chunks(job);
  t_inside_task = false;

  {
    // Completion = every chunk executed AND no worker still holds a
    // reference: `job` lives on this stack frame, so a straggler that
    // claimed its empty tail inside run_chunks must finish before we return.
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job.chunks_left.load(std::memory_order_acquire) == 0 && job.active == 0;
    });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace dbgp::util
