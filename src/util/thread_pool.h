// Fixed-size worker pool with a deterministic data-parallel primitive.
//
// The sweep harness (sim/experiment.cpp) fans trials, destinations, and
// adoption levels out as independent index-addressed tasks; this pool is the
// execution substrate. Design constraints, in order:
//
//   1. Determinism: parallel_for makes NO scheduling decision visible to the
//      caller. Tasks write into pre-sized slots keyed by index, every index
//      runs exactly once, and randomness comes from split_seed(base, index) —
//      a pure function of the logical task, never of the executing thread or
//      chunk boundaries. A pool of N threads therefore produces bit-identical
//      results to a pool of 1.
//   2. "threads == 1 is today's behaviour": a single-threaded pool spawns no
//      worker threads at all; parallel_for degenerates to a plain loop in the
//      calling thread (same cost profile as the pre-pool code).
//   3. No idle churn: an empty range returns without touching the condition
//      variable, and a job with fewer chunks than workers wakes only as many
//      workers as there are chunks to claim.
//
// Nested parallel_for calls (from inside a task) execute inline in the
// calling thread instead of re-submitting to the pool — a recursive submit
// onto a fixed-size pool whose workers are all blocked is the classic
// self-deadlock, and inline execution preserves the exactly-once contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbgp::util {

// Derives the seed for logical task `index` from a base seed. Pure function:
// stable across thread counts, chunk sizes, and execution order, so any task
// that seeds an Rng with split_seed(base, index) draws an identical stream no
// matter how the work was scheduled. (Two SplitMix64 steps, so consecutive
// indices land in uncorrelated parts of the sequence.)
std::uint64_t split_seed(std::uint64_t base, std::uint64_t index) noexcept;

class ThreadPool {
 public:
  // Cumulative counters since construction (monotone, cheap relaxed atomics).
  struct Stats {
    std::uint64_t tasks = 0;    // chunks executed (including inline ones)
    std::uint64_t wakeups = 0;  // times a worker picked up a job
    std::uint64_t wait_ns = 0;  // total publish-to-pickup latency across wakeups
  };

  // Called once per worker pickup with the nanoseconds between the job being
  // published and this worker claiming it — the "steal or wait" latency the
  // telemetry histogram records. Must be thread-safe; set it before the first
  // parallel_for.
  using WaitObserver = std::function<void(std::uint64_t wait_ns)>;

  // Called once per parallel_for_stage with the stage label and the wall time
  // the whole stage took (publish to last-index-done, measured in the calling
  // thread). Runs in the calling thread after the stage drains, so the
  // observer itself needs no synchronisation beyond what the caller has.
  using StageObserver = std::function<void(const char* stage, std::uint64_t wall_ns)>;

  // threads == 0 resolves to hardware_concurrency (at least 1); threads == 1
  // spawns no workers (all work runs inline in the caller). The pool size is
  // the total concurrency including the calling thread, so a pool of N
  // spawns N - 1 workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  static std::size_t resolve_threads(std::size_t requested) noexcept;

  // Total concurrency (spawned workers + the calling thread).
  std::size_t size() const noexcept { return workers_.size() + 1; }

  // Runs fn(i) for every i in [begin, end), partitioned into contiguous
  // chunks of at most `chunk` indices (chunk == 0 picks one automatically).
  // Blocks until every index has run; the calling thread participates. The
  // first exception a task throws is rethrown here after the range drains
  // (remaining chunks are claimed but skipped). Empty ranges return
  // immediately without waking anyone.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn);

  // parallel_for plus a wall-clock measurement reported to the stage
  // observer under `stage`. The label must outlive the call (string
  // literals do); timing covers the full blocking duration as seen by the
  // caller, which is what a pipeline-stage histogram wants.
  void parallel_for_stage(const char* stage, std::size_t begin, std::size_t end,
                          std::size_t chunk,
                          const std::function<void(std::size_t)>& fn);

  Stats stats() const noexcept;
  // Returns the counters accumulated since construction (or since the last
  // call) and zeroes them, so a periodic poller — the route-server daemon's
  // `metrics` dump — reports per-interval deltas instead of pool-lifetime
  // totals. Each counter is exchanged individually (relaxed); concurrent
  // increments land in exactly one interval, though not necessarily the same
  // one across the three fields.
  Stats snapshot_and_reset() noexcept;
  void set_wait_observer(WaitObserver observer);
  void set_stage_observer(StageObserver observer);

 private:
  struct Job;

  void worker_loop();
  // Claims and executes chunks until the job's range is exhausted.
  void run_chunks(Job& job);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new job
  std::condition_variable done_cv_;  // parallel_for waits here for completion
  Job* job_ = nullptr;               // guarded by mu_
  std::uint64_t generation_ = 0;     // guarded by mu_; bumped per job
  bool stop_ = false;                // guarded by mu_

  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> wait_ns_{0};
  WaitObserver wait_observer_;
  StageObserver stage_observer_;
};

}  // namespace dbgp::util
