#include <gtest/gtest.h>

#include "bgp/path_attributes.h"
#include "util/rng.h"

namespace dbgp::bgp {
namespace {

PathAttributes sample_attrs() {
  PathAttributes attrs;
  attrs.origin = Origin::kEgp;
  attrs.as_path = AsPath({65001, 65002, 70000});
  attrs.next_hop = net::Ipv4Address(192, 0, 2, 1);
  attrs.med = 50;
  attrs.local_pref = 200;
  attrs.communities = {0x00010002, 0xffff0001};
  return attrs;
}

TEST(AsPath, PrependExtendsLeadingSequence) {
  AsPath path({2, 3});
  path.prepend(1);
  ASSERT_EQ(path.segments().size(), 1u);
  EXPECT_EQ(path.segments()[0].asns, (std::vector<AsNumber>{1, 2, 3}));
}

TEST(AsPath, PrependAfterSetCreatesNewSegment) {
  AsPath path;
  path.prepend_set({5, 6});
  path.prepend(1);
  ASSERT_EQ(path.segments().size(), 2u);
  EXPECT_EQ(path.segments()[0].type, AsPathSegment::Type::kSequence);
  EXPECT_EQ(path.segments()[1].type, AsPathSegment::Type::kSet);
}

TEST(AsPath, HopCountCountsSetAsOne) {
  AsPath path({1, 2, 3});
  path.prepend_set({10, 11, 12});
  EXPECT_EQ(path.hop_count(), 4u);  // 3 sequence + 1 for the whole set
  EXPECT_EQ(path.total_asns(), 6u);
}

TEST(AsPath, ContainsLooksInsideSets) {
  AsPath path({1, 2});
  path.prepend_set({7, 8});
  EXPECT_TRUE(path.contains(1));
  EXPECT_TRUE(path.contains(8));
  EXPECT_FALSE(path.contains(9));
}

TEST(AsPath, ToString) {
  AsPath path({1, 2});
  path.prepend_set({7, 8});
  EXPECT_EQ(path.to_string(), "{7,8} 1 2");
}

TEST(PathAttributes, RoundTrip) {
  const PathAttributes attrs = sample_attrs();
  util::ByteWriter w;
  attrs.encode(w);
  util::ByteReader r(w.bytes());
  const PathAttributes decoded = PathAttributes::decode(r, w.size());
  EXPECT_EQ(decoded, attrs);
}

TEST(PathAttributes, RoundTripMinimal) {
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  attrs.next_hop = net::Ipv4Address(10, 0, 0, 1);
  util::ByteWriter w;
  attrs.encode(w);
  util::ByteReader r(w.bytes());
  EXPECT_EQ(PathAttributes::decode(r, w.size()), attrs);
}

TEST(PathAttributes, FourOctetAsRoundTrip) {
  PathAttributes attrs;
  attrs.as_path = AsPath({4200000001u, 65001});
  attrs.next_hop = net::Ipv4Address(10, 0, 0, 1);
  util::ByteWriter w;
  attrs.encode(w);
  util::ByteReader r(w.bytes());
  EXPECT_EQ(PathAttributes::decode(r, w.size()).as_path, attrs.as_path);
}

TEST(PathAttributes, UnknownOptionalTransitivePassesThrough) {
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  attrs.next_hop = net::Ipv4Address(10, 0, 0, 1);
  // An optional transitive attribute this implementation does not know —
  // BGP's existing evolvability hook (Section 2.6 of the paper).
  attrs.unknown.push_back({kAttrFlagOptional | kAttrFlagTransitive, 240, {1, 2, 3, 4}});
  util::ByteWriter w;
  attrs.encode(w);
  util::ByteReader r(w.bytes());
  const PathAttributes decoded = PathAttributes::decode(r, w.size());
  ASSERT_EQ(decoded.unknown.size(), 1u);
  EXPECT_EQ(decoded.unknown[0].type, 240);
  EXPECT_EQ(decoded.unknown[0].value, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_TRUE(decoded.unknown[0].transitive());
  // The Partial bit must be set once forwarded.
  EXPECT_NE(decoded.unknown[0].flags & kAttrFlagPartial, 0);
}

TEST(PathAttributes, UnknownOptionalNonTransitiveDropped) {
  util::ByteWriter w;
  PathAttributes base;
  base.as_path = AsPath({1});
  base.next_hop = net::Ipv4Address(10, 0, 0, 1);
  base.encode(w);
  // Append a raw optional NON-transitive unknown attribute.
  w.put_u8(kAttrFlagOptional);
  w.put_u8(241);
  w.put_u8(2);
  w.put_u8(0xaa);
  w.put_u8(0xbb);
  util::ByteReader r(w.bytes());
  const PathAttributes decoded = PathAttributes::decode(r, w.size());
  EXPECT_TRUE(decoded.unknown.empty());
}

TEST(PathAttributes, UnrecognizedWellKnownIsError) {
  util::ByteWriter w;
  PathAttributes base;
  base.as_path = AsPath({1});
  base.next_hop = net::Ipv4Address(10, 0, 0, 1);
  base.encode(w);
  w.put_u8(kAttrFlagTransitive);  // well-known (not optional)
  w.put_u8(200);
  w.put_u8(0);
  util::ByteReader r(w.bytes());
  EXPECT_THROW(PathAttributes::decode(r, w.size()), util::DecodeError);
}

TEST(PathAttributes, MissingMandatoryIsError) {
  util::ByteWriter w;
  // Only ORIGIN: no AS_PATH / NEXT_HOP.
  w.put_u8(kAttrFlagTransitive);
  w.put_u8(static_cast<std::uint8_t>(AttrType::kOrigin));
  w.put_u8(1);
  w.put_u8(0);
  util::ByteReader r(w.bytes());
  EXPECT_THROW(PathAttributes::decode(r, w.size()), util::DecodeError);
}

TEST(PathAttributes, ExtendedLengthForLargePayloads) {
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  attrs.next_hop = net::Ipv4Address(10, 0, 0, 1);
  std::vector<std::uint8_t> big(1000, 0x7e);
  attrs.unknown.push_back({kAttrFlagOptional | kAttrFlagTransitive, 240, big});
  util::ByteWriter w;
  attrs.encode(w);
  util::ByteReader r(w.bytes());
  const PathAttributes decoded = PathAttributes::decode(r, w.size());
  ASSERT_EQ(decoded.unknown.size(), 1u);
  EXPECT_EQ(decoded.unknown[0].value.size(), 1000u);
}

TEST(PathAttributes, TruncatedBlockThrows) {
  const PathAttributes attrs = sample_attrs();
  util::ByteWriter w;
  attrs.encode(w);
  auto bytes = w.bytes();
  bytes.pop_back();
  util::ByteReader r(bytes);
  EXPECT_THROW(PathAttributes::decode(r, bytes.size()), util::DecodeError);
}

TEST(PathAttributes, RandomizedRoundTrip) {
  util::Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    PathAttributes attrs;
    attrs.origin = static_cast<Origin>(rng.next_below(3));
    std::vector<AsNumber> seq;
    const auto len = rng.next_below(6) + 1;
    for (std::uint32_t i = 0; i < len; ++i) seq.push_back(rng.next_u32() % 100000 + 1);
    attrs.as_path = AsPath(seq);
    attrs.next_hop = net::Ipv4Address(rng.next_u32());
    if (rng.next_bool(0.5)) attrs.med = rng.next_u32();
    if (rng.next_bool(0.5)) attrs.local_pref = rng.next_u32();
    if (rng.next_bool(0.3)) attrs.aggregator = {rng.next_u32(), net::Ipv4Address(rng.next_u32())};
    const auto ncomm = rng.next_below(4);
    for (std::uint32_t i = 0; i < ncomm; ++i) attrs.communities.push_back(rng.next_u32());
    util::ByteWriter w;
    attrs.encode(w);
    util::ByteReader r(w.bytes());
    EXPECT_EQ(PathAttributes::decode(r, w.size()), attrs);
  }
}

}  // namespace
}  // namespace dbgp::bgp
