#include <gtest/gtest.h>

#include <array>
#include <functional>

#include "bgp/decision.h"
#include "bgp/policy.h"

namespace dbgp::bgp {
namespace {

// Attribute sets are immutable once interned, so test routes stage their
// edits through a builder against a shared test interner.
AttrInterner& test_interner() {
  static AttrInterner interner;
  return interner;
}

Route make_route(std::vector<AsNumber> path, PeerId peer = 0, AsNumber neighbor_as = 0,
                 std::uint64_t seq = 0,
                 const std::function<void(PathAttributes&)>& edit = {}) {
  Route r;
  r.prefix = *net::Prefix::parse("10.0.0.0/8");
  AttrBuilder builder;
  builder.attrs().as_path = AsPath(std::move(path));
  builder.attrs().next_hop = net::Ipv4Address(1, 1, 1, 1);
  if (edit) edit(builder.attrs());
  r.attrs = std::move(builder).intern(test_interner());
  r.from_peer = peer;
  r.neighbor_as = neighbor_as;
  r.sequence = seq;
  return r;
}

TEST(Decision, LocalPrefDominates) {
  Route a = make_route({1, 2, 3, 4}, 0, 0, 0,
                       [](PathAttributes& p) { p.local_pref = 200; });
  Route b = make_route({1}, 0, 0, 0, [](PathAttributes& p) { p.local_pref = 100; });
  EXPECT_TRUE(better_route(a, b));
  EXPECT_FALSE(better_route(b, a));
}

TEST(Decision, AbsentLocalPrefTreatedAsDefault) {
  Route a = make_route({1, 2});
  Route b = make_route({1, 2, 3}, 0, 0, 0,
                       [](PathAttributes& p) { p.local_pref = kDefaultLocalPref; });
  EXPECT_TRUE(better_route(a, b));  // falls to path length
}

TEST(Decision, ShorterPathWins) {
  EXPECT_TRUE(better_route(make_route({1, 2}), make_route({1, 2, 3})));
}

TEST(Decision, AsSetCountsAsOneHop) {
  Route a = make_route({1}, 0, 0, 0,
                       [](PathAttributes& p) { p.as_path.prepend_set({10, 11, 12}); });
  Route b = make_route({1, 2, 3});  // hop_count 3, vs a's hop_count 2
  EXPECT_TRUE(better_route(a, b));
}

TEST(Decision, OriginOrder) {
  Route a = make_route({1, 2}, 0, 0, 0, [](PathAttributes& p) { p.origin = Origin::kIgp; });
  Route b = make_route({3, 4}, 0, 0, 0, [](PathAttributes& p) { p.origin = Origin::kEgp; });
  EXPECT_TRUE(better_route(a, b));
  Route c = make_route({5, 6}, 0, 0, 0,
                       [](PathAttributes& p) { p.origin = Origin::kIncomplete; });
  EXPECT_TRUE(better_route(b, c));
}

TEST(Decision, MedOnlyComparedWithinSameNeighborAs) {
  Route a = make_route({1, 2}, 0, 65001, 0, [](PathAttributes& p) { p.med = 100; });
  Route b = make_route({1, 3}, 1, 65001, 0, [](PathAttributes& p) { p.med = 10; });
  EXPECT_TRUE(better_route(b, a));  // same neighbor AS: lower MED wins

  Route c = make_route({1, 3}, 1, 65002, 0, [](PathAttributes& p) { p.med = 10; });
  // Different neighbor AS: MED skipped, falls to peer id (0 < 1).
  EXPECT_TRUE(better_route(a, c));
}

TEST(Decision, PeerIdAndSequenceBreakTies) {
  Route a = make_route({1, 2}, 0, 0, 5);
  Route b = make_route({1, 3}, 1, 0, 1);
  EXPECT_TRUE(better_route(a, b));
  Route c = make_route({1, 3}, 0, 0, 1);
  EXPECT_TRUE(better_route(c, a));  // same peer: earlier arrival
}

TEST(Decision, SelectBestOverSet) {
  const std::array<Route, 3> set = {make_route({1, 2, 3}, 0), make_route({1, 2}, 1),
                                    make_route({1, 2, 3, 4}, 2)};
  EXPECT_EQ(select_best(set).get(), &set[1]);
  EXPECT_FALSE(select_best(std::span<const Route>{}));
}

TEST(Decision, EqualAttrsShareOneCanonicalEntry) {
  // Identical content interns to the same entry: handle compare is pointer
  // compare, and the interner records a hit.
  const auto hits_before = test_interner().stats().hits;
  Route a = make_route({7, 8, 9});
  Route b = make_route({7, 8, 9});
  EXPECT_EQ(a.attrs, b.attrs);
  EXPECT_EQ(a.attrs.get(), b.attrs.get());
  EXPECT_GT(test_interner().stats().hits, hits_before);
  Route c = make_route({7, 8});
  EXPECT_NE(a.attrs, c.attrs);
}

// -- Policy ------------------------------------------------------------------------

TEST(Policy, EmptyChainAccepts) {
  PolicyChain chain;
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  EXPECT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
}

TEST(Policy, PrefixExactMatchRejects) {
  PolicyRule rule;
  rule.match.prefix_exact = *net::Prefix::parse("10.0.0.0/8");
  rule.accept = false;
  PolicyChain chain({rule});
  PathAttributes attrs;
  EXPECT_FALSE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
  EXPECT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/9"), attrs, 65000));
}

TEST(Policy, CoveredByMatchesMoreSpecifics) {
  PolicyRule rule;
  rule.match.prefix_covered_by = *net::Prefix::parse("10.0.0.0/8");
  rule.accept = false;
  PolicyChain chain({rule});
  PathAttributes attrs;
  EXPECT_FALSE(chain.apply(*net::Prefix::parse("10.1.0.0/16"), attrs, 65000));
  EXPECT_TRUE(chain.apply(*net::Prefix::parse("11.0.0.0/8"), attrs, 65000));
}

TEST(Policy, AsPathFilter) {
  PolicyRule rule;
  rule.match.as_path_contains = 666;
  rule.accept = false;
  PolicyChain chain({rule});
  PathAttributes bad;
  bad.as_path = AsPath({1, 666, 3});
  PathAttributes good;
  good.as_path = AsPath({1, 2, 3});
  EXPECT_FALSE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), bad, 65000));
  EXPECT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), good, 65000));
}

TEST(Policy, ActionsApplyOnAccept) {
  PolicyRule rule;
  rule.actions.set_local_pref = 300;
  rule.actions.prepend_count = 2;
  rule.actions.add_communities = {0xdead};
  PolicyChain chain({rule});
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  ASSERT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
  EXPECT_EQ(attrs.local_pref, 300u);
  EXPECT_EQ(attrs.as_path.hop_count(), 3u);
  EXPECT_TRUE(attrs.as_path.contains(65000));
  EXPECT_EQ(attrs.communities, std::vector<std::uint32_t>{0xdead});
}

TEST(Policy, CommunityMatchAndStrip) {
  PolicyRule rule;
  rule.match.has_community = 42;
  rule.actions.strip_communities = {42};
  rule.actions.set_med = 99;
  PolicyChain chain({rule});
  PathAttributes attrs;
  attrs.communities = {42, 43};
  ASSERT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
  EXPECT_EQ(attrs.communities, std::vector<std::uint32_t>{43});
  EXPECT_EQ(attrs.med, 99u);
}

TEST(Policy, FirstMatchWins) {
  PolicyRule reject_all;
  reject_all.accept = false;
  PolicyRule accept_specific;
  accept_specific.match.prefix_exact = *net::Prefix::parse("10.0.0.0/8");
  PolicyChain chain({accept_specific, reject_all});
  PathAttributes attrs;
  EXPECT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
  EXPECT_FALSE(chain.apply(*net::Prefix::parse("11.0.0.0/8"), attrs, 65000));
}

TEST(Policy, AddCommunityIsIdempotent) {
  PolicyRule rule;
  rule.actions.add_communities = {7};
  PolicyChain chain({rule});
  PathAttributes attrs;
  attrs.communities = {7};
  ASSERT_TRUE(chain.apply(*net::Prefix::parse("10.0.0.0/8"), attrs, 65000));
  EXPECT_EQ(attrs.communities.size(), 1u);
}

}  // namespace
}  // namespace dbgp::bgp
