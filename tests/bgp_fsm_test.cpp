#include <gtest/gtest.h>

#include "bgp/fsm.h"

namespace dbgp::bgp {
namespace {

TEST(SessionFsm, HappyPathHandshake) {
  SessionFsm fsm(90);
  EXPECT_EQ(fsm.state(), FsmState::kIdle);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  EXPECT_EQ(fsm.state(), FsmState::kConnect);
  EXPECT_EQ(fsm.handle(FsmEvent::kTcpConnected, 0.0), FsmAction::kSendOpen);
  EXPECT_EQ(fsm.state(), FsmState::kOpenSent);
  EXPECT_EQ(fsm.handle(FsmEvent::kOpenReceived, 0.1), FsmAction::kSendKeepAlive);
  EXPECT_EQ(fsm.state(), FsmState::kOpenConfirm);
  EXPECT_EQ(fsm.handle(FsmEvent::kKeepAliveReceived, 0.2), FsmAction::kSessionUp);
  EXPECT_TRUE(fsm.established());
}

TEST(SessionFsm, HoldTimeNegotiatesToMin) {
  SessionFsm fsm(90);
  fsm.negotiate_hold_time(30);
  EXPECT_EQ(fsm.hold_time(), 30u);
  fsm.negotiate_hold_time(120);
  EXPECT_EQ(fsm.hold_time(), 30u);
}

TEST(SessionFsm, HoldTimerExpiryTearsDown) {
  SessionFsm fsm(30);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  ASSERT_TRUE(fsm.established());
  EXPECT_EQ(fsm.tick(10.0), FsmAction::kSendKeepAlive);  // keepalive at hold/3
  EXPECT_EQ(fsm.tick(31.0), FsmAction::kSessionDown);
  EXPECT_EQ(fsm.state(), FsmState::kIdle);
}

TEST(SessionFsm, KeepAliveRefreshesHoldTimer) {
  SessionFsm fsm(30);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 25.0);  // refresh
  EXPECT_NE(fsm.tick(40.0), FsmAction::kSessionDown);
  EXPECT_TRUE(fsm.established());
  EXPECT_EQ(fsm.tick(56.0), FsmAction::kSessionDown);
}

TEST(SessionFsm, UpdateRefreshesHoldTimer) {
  SessionFsm fsm(30);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  fsm.handle(FsmEvent::kUpdateReceived, 20.0);
  EXPECT_TRUE(fsm.established());
  EXPECT_NE(fsm.tick(35.0), FsmAction::kSessionDown);
}

TEST(SessionFsm, ZeroHoldTimeDisablesTimers) {
  SessionFsm fsm(0);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  EXPECT_EQ(fsm.tick(1e9), FsmAction::kNone);
  EXPECT_TRUE(fsm.established());
}

TEST(SessionFsm, UpdateBeforeEstablishedIsError) {
  SessionFsm fsm(90);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  EXPECT_EQ(fsm.handle(FsmEvent::kUpdateReceived, 0.1), FsmAction::kSendNotificationAndDrop);
}

TEST(SessionFsm, NotificationTearsDownEstablishedSession) {
  SessionFsm fsm(90);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  EXPECT_EQ(fsm.handle(FsmEvent::kNotificationReceived, 1.0), FsmAction::kSessionDown);
  EXPECT_EQ(fsm.state(), FsmState::kIdle);
}

TEST(SessionFsm, PassiveOpenAnswersWithOpen) {
  SessionFsm fsm(90);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  // OPEN arrives before our TCP connect succeeded (collision-simplified).
  EXPECT_EQ(fsm.handle(FsmEvent::kOpenReceived, 0.0), FsmAction::kSendOpen);
  EXPECT_EQ(fsm.state(), FsmState::kOpenConfirm);
  EXPECT_EQ(fsm.handle(FsmEvent::kKeepAliveReceived, 0.1), FsmAction::kSessionUp);
}

TEST(SessionFsm, ManualStopFromEstablishedFlushes) {
  SessionFsm fsm(90);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  fsm.handle(FsmEvent::kTcpConnected, 0.0);
  fsm.handle(FsmEvent::kOpenReceived, 0.0);
  fsm.handle(FsmEvent::kKeepAliveReceived, 0.0);
  EXPECT_EQ(fsm.handle(FsmEvent::kManualStop, 1.0), FsmAction::kSessionDown);
  // Restart works after reset.
  fsm.handle(FsmEvent::kManualStart, 2.0);
  EXPECT_EQ(fsm.state(), FsmState::kConnect);
}

TEST(SessionFsm, TcpFailedInConnectRetries) {
  SessionFsm fsm(90);
  fsm.handle(FsmEvent::kManualStart, 0.0);
  EXPECT_EQ(fsm.handle(FsmEvent::kTcpFailed, 0.1), FsmAction::kNone);
  EXPECT_EQ(fsm.state(), FsmState::kActive);
  EXPECT_EQ(fsm.handle(FsmEvent::kTcpConnected, 0.2), FsmAction::kSendOpen);
}

}  // namespace
}  // namespace dbgp::bgp
