#include <gtest/gtest.h>

#include "bgp/message.h"

namespace dbgp::bgp {
namespace {

TEST(Nlri, RoundTripVariousLengths) {
  for (const char* text : {"0.0.0.0/0", "10.0.0.0/8", "10.128.0.0/9", "192.168.1.0/24",
                           "192.168.1.17/32", "172.16.0.0/12"}) {
    const net::Prefix p = *net::Prefix::parse(text);
    util::ByteWriter w;
    encode_nlri_prefix(w, p);
    util::ByteReader r(w.bytes());
    EXPECT_EQ(decode_nlri_prefix(r), p) << text;
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Nlri, UsesMinimalOctets) {
  util::ByteWriter w;
  encode_nlri_prefix(w, *net::Prefix::parse("10.0.0.0/8"));
  EXPECT_EQ(w.size(), 2u);  // length byte + 1 octet
  util::ByteWriter w2;
  encode_nlri_prefix(w2, *net::Prefix::parse("10.1.0.0/16"));
  EXPECT_EQ(w2.size(), 3u);
}

TEST(Message, OpenRoundTrip) {
  OpenMessage open;
  open.asn = 4200000000u;  // requires the 4-octet capability
  open.hold_time = 180;
  open.router_id = net::Ipv4Address(10, 0, 0, 99);
  const auto bytes = encode_message(open);
  EXPECT_EQ(bytes.size(), (static_cast<std::size_t>(bytes[16]) << 8) | bytes[17]);
  const Message decoded = decode_message(bytes);
  ASSERT_TRUE(std::holds_alternative<OpenMessage>(decoded));
  const auto& got = std::get<OpenMessage>(decoded);
  EXPECT_EQ(got.asn, open.asn);
  EXPECT_EQ(got.hold_time, 180);
  EXPECT_EQ(got.router_id, open.router_id);
  EXPECT_TRUE(got.capabilities.four_octet_as);
}

TEST(Message, OpenTwoOctetAsInWireField) {
  OpenMessage open;
  open.asn = 70000;  // > 65535: the 2-byte field must carry AS_TRANS
  open.router_id = net::Ipv4Address(1, 1, 1, 1);
  const auto bytes = encode_message(open);
  // Byte 19 is version; bytes 20-21 the 2-octet AS field.
  EXPECT_EQ((bytes[20] << 8) | bytes[21], static_cast<int>(kAsTrans));
  // But the capability restores the real ASN.
  EXPECT_EQ(std::get<OpenMessage>(decode_message(bytes)).asn, 70000u);
}

TEST(Message, UpdateRoundTrip) {
  UpdateMessage update;
  update.withdrawn.push_back(*net::Prefix::parse("172.16.0.0/12"));
  PathAttributes attrs;
  attrs.as_path = AsPath({65001, 65002});
  attrs.next_hop = net::Ipv4Address(10, 0, 0, 1);
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("192.168.0.0/16"));
  update.nlri.push_back(*net::Prefix::parse("192.168.128.0/17"));
  const Message decoded = decode_message(encode_message(update));
  ASSERT_TRUE(std::holds_alternative<UpdateMessage>(decoded));
  EXPECT_EQ(std::get<UpdateMessage>(decoded), update);
}

TEST(Message, WithdrawOnlyUpdate) {
  UpdateMessage update;
  update.withdrawn.push_back(*net::Prefix::parse("10.0.0.0/8"));
  const Message decoded = decode_message(encode_message(update));
  const auto& got = std::get<UpdateMessage>(decoded);
  EXPECT_EQ(got.withdrawn.size(), 1u);
  EXPECT_FALSE(got.attributes.has_value());
  EXPECT_TRUE(got.nlri.empty());
}

TEST(Message, NlriWithoutAttributesRejected) {
  // Craft: header + zero withdrawn + zero attrs + one NLRI.
  util::ByteWriter w;
  for (int i = 0; i < 16; ++i) w.put_u8(0xff);
  const auto len_at = w.reserve_u16();
  w.put_u8(2);  // UPDATE
  w.put_u16(0);
  w.put_u16(0);
  encode_nlri_prefix(w, *net::Prefix::parse("10.0.0.0/8"));
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size()));
  EXPECT_THROW(decode_message(w.bytes()), util::DecodeError);
}

TEST(Message, KeepAliveRoundTrip) {
  const auto bytes = encode_message(KeepAliveMessage{});
  EXPECT_EQ(bytes.size(), kHeaderSize);
  EXPECT_TRUE(std::holds_alternative<KeepAliveMessage>(decode_message(bytes)));
}

TEST(Message, NotificationRoundTrip) {
  NotificationMessage notif{6, 2, {0xde, 0xad}};
  const Message decoded = decode_message(encode_message(notif));
  EXPECT_EQ(std::get<NotificationMessage>(decoded), notif);
}

TEST(Message, BadMarkerRejected) {
  auto bytes = encode_message(KeepAliveMessage{});
  bytes[3] = 0x00;
  EXPECT_THROW(decode_message(bytes), util::DecodeError);
}

TEST(Message, LengthMismatchRejected) {
  auto bytes = encode_message(KeepAliveMessage{});
  bytes.push_back(0);  // trailing garbage makes declared != actual
  EXPECT_THROW(decode_message(bytes), util::DecodeError);
}

TEST(Message, UnknownTypeRejected) {
  auto bytes = encode_message(KeepAliveMessage{});
  bytes[18] = 9;
  EXPECT_THROW(decode_message(bytes), util::DecodeError);
}

TEST(Message, OversizeUpdateRejectedAtEncode) {
  UpdateMessage update;
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  attrs.next_hop = net::Ipv4Address(1, 1, 1, 1);
  attrs.unknown.push_back({kAttrFlagOptional | kAttrFlagTransitive, 240,
                           std::vector<std::uint8_t>(5000, 0)});
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("10.0.0.0/8"));
  EXPECT_THROW(encode_message(update), util::DecodeError);
}

TEST(Message, KeepAliveWithBodyRejected) {
  util::ByteWriter w;
  for (int i = 0; i < 16; ++i) w.put_u8(0xff);
  w.put_u16(20);  // header + 1 extra byte
  w.put_u8(4);
  w.put_u8(0x42);
  EXPECT_THROW(decode_message(w.bytes()), util::DecodeError);
}

}  // namespace
}  // namespace dbgp::bgp
