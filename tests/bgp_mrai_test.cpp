// MRAI (RFC 4271 9.2.1.1) pacing and coalescing in the BGP speaker.
#include <gtest/gtest.h>

#include "bgp/speaker.h"

namespace dbgp::bgp {
namespace {

const net::Prefix kPrefix = *net::Prefix::parse("10.0.0.0/8");

struct MraiFixture {
  BgpSpeaker speaker;
  PeerId upstream;    // routes come from here
  PeerId downstream;  // MRAI pacing observed here

  explicit MraiFixture(double mrai)
      : speaker([mrai] {
          BgpSpeaker::Config config;
          config.asn = 100;
          config.router_id = net::Ipv4Address(100);
          config.next_hop = net::Ipv4Address(100);
          config.hold_time = 0;
          config.mrai = mrai;
          return config;
        }()) {
    upstream = speaker.add_peer(200);
    downstream = speaker.add_peer(300);
    establish(upstream, 200);
    establish(downstream, 300);
  }

  void establish(PeerId peer, AsNumber remote) {
    speaker.start_peer(peer, 0.0);
    speaker.handle_message(peer, OpenMessage{4, remote, 0, net::Ipv4Address(remote), {}},
                           0.0);
    speaker.handle_message(peer, KeepAliveMessage{}, 0.0);
  }

  // Feeds an announce from upstream with the given first AS-path hop; returns
  // messages that went OUT toward downstream.
  std::vector<UpdateMessage> announce(AsNumber origin, double now) {
    UpdateMessage update;
    PathAttributes attrs;
    attrs.as_path = AsPath({200, origin});
    attrs.next_hop = net::Ipv4Address(200);
    update.attributes = attrs;
    update.nlri.push_back(kPrefix);
    return downstream_updates(speaker.handle_message(upstream, Message{update}, now));
  }

  std::vector<UpdateMessage> withdraw(double now) {
    UpdateMessage update;
    update.withdrawn.push_back(kPrefix);
    return downstream_updates(speaker.handle_message(upstream, Message{update}, now));
  }

  std::vector<UpdateMessage> tick(double now) {
    return downstream_updates(speaker.tick(now));
  }

  std::vector<UpdateMessage> downstream_updates(const std::vector<Outgoing>& out) {
    std::vector<UpdateMessage> updates;
    for (const auto& msg : out) {
      if (msg.peer != downstream) continue;
      const Message m = decode_message(msg.bytes);
      if (std::holds_alternative<UpdateMessage>(m)) {
        updates.push_back(std::get<UpdateMessage>(m));
      }
    }
    return updates;
  }
};

TEST(Mrai, ZeroMraiSendsImmediately) {
  MraiFixture fix(0.0);
  EXPECT_EQ(fix.announce(1, 0.0).size(), 1u);
  EXPECT_EQ(fix.announce(2, 0.1).size(), 1u);  // every delta goes out
}

TEST(Mrai, FirstUpdateImmediateSecondPaced) {
  MraiFixture fix(30.0);
  // First delta: interval open, sent immediately.
  EXPECT_EQ(fix.announce(1, 0.0).size(), 1u);
  // Second delta 1s later: inside the interval, buffered.
  EXPECT_TRUE(fix.announce(2, 1.0).empty());
  // Nothing leaks before the interval elapses.
  EXPECT_TRUE(fix.tick(10.0).empty());
  // At 30s the pending delta flushes.
  const auto flushed = fix.tick(30.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_TRUE(flushed[0].attributes->as_path.contains(2));
}

TEST(Mrai, FlapsCoalesceToLatestState) {
  MraiFixture fix(30.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  // Three flaps inside the interval: only the last survives.
  EXPECT_TRUE(fix.announce(2, 1.0).empty());
  EXPECT_TRUE(fix.announce(3, 2.0).empty());
  EXPECT_TRUE(fix.announce(4, 3.0).empty());
  const auto flushed = fix.tick(31.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_TRUE(flushed[0].attributes->as_path.contains(4));
  EXPECT_FALSE(flushed[0].attributes->as_path.contains(2));
}

TEST(Mrai, AnnounceThenWithdrawCoalescesToWithdraw) {
  MraiFixture fix(30.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  EXPECT_TRUE(fix.announce(2, 1.0).empty());
  EXPECT_TRUE(fix.withdraw(2.0).empty());
  const auto flushed = fix.tick(31.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_TRUE(flushed[0].nlri.empty());
  ASSERT_EQ(flushed[0].withdrawn.size(), 1u);
  EXPECT_EQ(flushed[0].withdrawn[0], kPrefix);
}

TEST(Mrai, WithdrawThenReannounceCoalescesToAnnounce) {
  MraiFixture fix(30.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  EXPECT_TRUE(fix.withdraw(1.0).empty());
  EXPECT_TRUE(fix.announce(5, 2.0).empty());
  const auto flushed = fix.tick(31.0);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_TRUE(flushed[0].withdrawn.empty());
  ASSERT_EQ(flushed[0].nlri.size(), 1u);
  EXPECT_TRUE(flushed[0].attributes->as_path.contains(5));
}

TEST(Mrai, IntervalReopensAfterFlush) {
  MraiFixture fix(10.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  EXPECT_TRUE(fix.announce(2, 1.0).empty());
  ASSERT_EQ(fix.tick(10.0).size(), 1u);
  // A delta arriving after the flush but inside the NEW interval buffers.
  EXPECT_TRUE(fix.announce(3, 11.0).empty());
  // And a delta after that interval flushes straight through.
  ASSERT_EQ(fix.tick(20.0).size(), 1u);
  EXPECT_EQ(fix.announce(4, 35.0).size(), 1u);
}

TEST(Mrai, SessionDownDropsPendingDeltas) {
  MraiFixture fix(30.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  EXPECT_TRUE(fix.announce(2, 1.0).empty());
  fix.speaker.stop_peer(fix.downstream, 2.0);
  EXPECT_TRUE(fix.tick(31.0).empty());  // nothing leaks to a dead session
}

// -- Route Refresh (RFC 2918) ------------------------------------------------------

TEST(RouteRefresh, MessageRoundTrip) {
  RouteRefreshMessage refresh{1, 1};
  const Message decoded = decode_message(encode_message(Message{refresh}));
  ASSERT_TRUE(std::holds_alternative<RouteRefreshMessage>(decoded));
  EXPECT_EQ(std::get<RouteRefreshMessage>(decoded), refresh);
}

TEST(RouteRefresh, PeerResendsFullTable) {
  MraiFixture fix(0.0);
  ASSERT_EQ(fix.announce(1, 0.0).size(), 1u);
  // Downstream asks for a refresh: the speaker resends its table.
  const auto out = fix.speaker.handle_message(fix.downstream, Message{RouteRefreshMessage{}},
                                              1.0);
  const auto updates = fix.downstream_updates(out);
  ASSERT_EQ(updates.size(), 1u);
  ASSERT_EQ(updates[0].nlri.size(), 1u);
  EXPECT_EQ(updates[0].nlri[0], kPrefix);
  EXPECT_EQ(fix.speaker.stats().refreshes_received, 1u);
}

TEST(RouteRefresh, BeforeEstablishedIsFsmError) {
  BgpSpeaker::Config config;
  config.asn = 1;
  config.router_id = net::Ipv4Address(1);
  config.next_hop = net::Ipv4Address(1);
  BgpSpeaker speaker(config);
  const PeerId peer = speaker.add_peer(2);
  const auto out = speaker.handle_message(peer, Message{RouteRefreshMessage{}}, 0.0);
  ASSERT_EQ(out.size(), 1u);
  const Message m = decode_message(out[0].bytes);
  EXPECT_TRUE(std::holds_alternative<NotificationMessage>(m));
}

TEST(RouteRefresh, RequestEmitsMessageOnlyWhenEstablished) {
  MraiFixture fix(0.0);
  const auto out = fix.speaker.request_refresh(fix.upstream, 0.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<RouteRefreshMessage>(decode_message(out[0].bytes)));

  BgpSpeaker::Config config;
  config.asn = 1;
  config.router_id = net::Ipv4Address(1);
  config.next_hop = net::Ipv4Address(1);
  BgpSpeaker idle(config);
  const PeerId peer = idle.add_peer(2);
  EXPECT_TRUE(idle.request_refresh(peer, 0.0).empty());
}

}  // namespace
}  // namespace dbgp::bgp
