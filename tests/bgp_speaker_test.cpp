#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "bgp/speaker.h"

namespace dbgp::bgp {
namespace {

// Minimal synchronous harness: shuttles encoded messages between speakers
// until quiescent. Peer wiring is symmetric by construction.
class Mesh {
 public:
  BgpSpeaker& add(AsNumber asn) {
    BgpSpeaker::Config config;
    config.asn = asn;
    config.router_id = net::Ipv4Address(asn);
    config.next_hop = net::Ipv4Address(asn);
    speakers_.emplace(asn, BgpSpeaker(config));
    return speakers_.at(asn);
  }

  void connect(AsNumber a, AsNumber b, PolicyChain a_import = {}, PolicyChain a_export = {}) {
    const PeerId id_ab = speakers_.at(a).add_peer(b, std::move(a_import), std::move(a_export));
    const PeerId id_ba = speakers_.at(b).add_peer(a);
    wiring_[{a, id_ab}] = {b, id_ba};
    wiring_[{b, id_ba}] = {a, id_ab};
    enqueue(a, speakers_.at(a).start_peer(id_ab, now_));
    enqueue(b, speakers_.at(b).start_peer(id_ba, now_));
    pump();
  }

  void originate(AsNumber asn, const net::Prefix& prefix) {
    enqueue(asn, speakers_.at(asn).originate(prefix, now_));
    pump();
  }

  void withdraw(AsNumber asn, const net::Prefix& prefix) {
    enqueue(asn, speakers_.at(asn).withdraw_origin(prefix, now_));
    pump();
  }

  void stop_session(AsNumber a, AsNumber b) {
    for (const auto& [key, dest] : wiring_) {
      if (key.first == a && dest.first == b) {
        enqueue(a, speakers_.at(a).stop_peer(key.second, now_));
        break;
      }
    }
    pump();
  }

  BgpSpeaker& speaker(AsNumber asn) { return speakers_.at(asn); }

  void pump() {
    std::size_t guard = 0;
    while (!queue_.empty()) {
      ASSERT_LT(guard++, 100000u) << "message storm: no convergence";
      auto [from, msg] = std::move(queue_.front());
      queue_.pop_front();
      const auto dest = wiring_.at({from, msg.peer});
      enqueue(dest.first,
              speakers_.at(dest.first).handle_bytes(dest.second, msg.bytes, now_));
    }
  }

 private:
  void enqueue(AsNumber from, std::vector<Outgoing> out) {
    for (auto& msg : out) queue_.emplace_back(from, std::move(msg));
  }

  std::map<AsNumber, BgpSpeaker> speakers_;
  std::map<std::pair<AsNumber, PeerId>, std::pair<AsNumber, PeerId>> wiring_;
  std::deque<std::pair<AsNumber, Outgoing>> queue_;
  double now_ = 0.0;
};

TEST(BgpSpeaker, SessionEstablishment) {
  Mesh mesh;
  mesh.add(1);
  mesh.add(2);
  mesh.connect(1, 2);
  EXPECT_TRUE(mesh.speaker(1).session_established(0));
  EXPECT_TRUE(mesh.speaker(2).session_established(0));
}

TEST(BgpSpeaker, RoutePropagatesAcrossLine) {
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3, 4}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  mesh.connect(3, 4);
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  mesh.originate(1, prefix);

  const RouteView at4 = mesh.speaker(4).loc_rib().find(prefix);
  ASSERT_TRUE(at4);
  EXPECT_EQ(at4->attrs->as_path.to_string(), "3 2 1");
  EXPECT_EQ(at4->attrs->next_hop, net::Ipv4Address(3));  // next-hop-self at each hop
}

TEST(BgpSpeaker, PrefersShorterPathInTriangle) {
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  mesh.connect(1, 3);
  const auto prefix = *net::Prefix::parse("203.0.113.0/24");
  mesh.originate(1, prefix);
  const RouteView at3 = mesh.speaker(3).loc_rib().find(prefix);
  ASSERT_TRUE(at3);
  EXPECT_EQ(at3->attrs->as_path.hop_count(), 1u);  // direct from AS1
}

TEST(BgpSpeaker, WithdrawPropagates) {
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  mesh.originate(1, prefix);
  ASSERT_TRUE(mesh.speaker(3).loc_rib().find(prefix));
  mesh.withdraw(1, prefix);
  EXPECT_FALSE(mesh.speaker(3).loc_rib().find(prefix));
  EXPECT_FALSE(mesh.speaker(2).loc_rib().find(prefix));
}

TEST(BgpSpeaker, FailoverToLongerPath) {
  // Square: 1-2-4 and 1-3-4; 4 should fail over when 2 goes away.
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3, 4}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(1, 3);
  mesh.connect(2, 4);
  mesh.connect(3, 4);
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  mesh.originate(1, prefix);

  const RouteView before = mesh.speaker(4).loc_rib().find(prefix);
  ASSERT_TRUE(before);
  EXPECT_EQ(before->attrs->as_path.hop_count(), 2u);

  // Tear down whichever adjacency AS4 was using.
  const AsNumber via = before->attrs->as_path.segments()[0].asns[0];
  mesh.stop_session(4, via);
  const RouteView after = mesh.speaker(4).loc_rib().find(prefix);
  ASSERT_TRUE(after);
  EXPECT_NE(after->attrs->as_path.segments()[0].asns[0], via);
}

TEST(BgpSpeaker, LoopingPathRejected) {
  Mesh mesh;
  mesh.add(1);
  mesh.add(2);
  mesh.connect(1, 2);
  // Hand-feed AS2 an update whose path already contains AS2.
  UpdateMessage update;
  PathAttributes attrs;
  attrs.as_path = AsPath({1, 2, 7});
  attrs.next_hop = net::Ipv4Address(1);
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("10.0.0.0/8"));
  mesh.speaker(2).handle_message(0, Message{update}, 0.0);
  EXPECT_FALSE(mesh.speaker(2).loc_rib().find(*net::Prefix::parse("10.0.0.0/8")));
  EXPECT_EQ(mesh.speaker(2).stats().routes_rejected_by_loop, 1u);
}

TEST(BgpSpeaker, ImportPolicyRejectionActsAsWithdraw) {
  Mesh mesh;
  mesh.add(1);
  mesh.add(2);
  PolicyRule reject;
  reject.match.as_path_contains = 1;
  reject.accept = false;
  mesh.connect(2, 1, PolicyChain({reject}));  // AS2 rejects paths via AS1
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  mesh.originate(1, prefix);
  EXPECT_FALSE(mesh.speaker(2).loc_rib().find(prefix));
  EXPECT_GE(mesh.speaker(2).stats().routes_rejected_by_policy, 1u);
}

TEST(BgpSpeaker, MalformedBytesTriggerNotification) {
  Mesh mesh;
  mesh.add(1);
  mesh.add(2);
  mesh.connect(1, 2);
  std::vector<std::uint8_t> garbage(19, 0x00);
  const auto out = mesh.speaker(1).handle_bytes(0, garbage, 0.0);
  ASSERT_FALSE(out.empty());
  const Message m = decode_message(out[0].bytes);
  EXPECT_TRUE(std::holds_alternative<NotificationMessage>(m));
  EXPECT_EQ(mesh.speaker(1).stats().decode_errors, 1u);
}

TEST(BgpSpeaker, UnknownTransitiveAttributePassesThrough) {
  // The optional-transitive pass-through BGP already has (and on which the
  // paper builds): AS2 must forward attr 240 unchanged to AS3.
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  UpdateMessage update;
  PathAttributes attrs;
  attrs.as_path = AsPath({1});
  attrs.next_hop = net::Ipv4Address(1);
  attrs.unknown.push_back({kAttrFlagOptional | kAttrFlagTransitive, 240, {9, 9, 9}});
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("10.0.0.0/8"));
  mesh.speaker(2).handle_message(0, Message{update}, 0.0);  // from AS1 (peer 0)

  const RouteView at2 = mesh.speaker(2).loc_rib().find(*net::Prefix::parse("10.0.0.0/8"));
  ASSERT_TRUE(at2);
  ASSERT_EQ(at2->attrs->unknown.size(), 1u);
  EXPECT_EQ(at2->attrs->unknown[0].value, (std::vector<std::uint8_t>{9, 9, 9}));
}

TEST(BgpSpeaker, SessionDownFlushesLearnedRoutes) {
  Mesh mesh;
  for (AsNumber asn : {1, 2, 3}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  mesh.originate(1, prefix);
  ASSERT_TRUE(mesh.speaker(3).loc_rib().find(prefix));
  mesh.stop_session(2, 1);
  EXPECT_FALSE(mesh.speaker(2).loc_rib().find(prefix));
  EXPECT_FALSE(mesh.speaker(3).loc_rib().find(prefix));
}

}  // namespace
}  // namespace dbgp::bgp
