#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/bgpsec.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

const net::Prefix kPrefix = *net::Prefix::parse("203.0.113.0/24");

std::vector<Attestation> make_chain(const AttestationAuthority& authority,
                                    const std::vector<std::pair<bgp::AsNumber, bgp::AsNumber>>&
                                        signer_target_pairs) {
  std::vector<Attestation> chain;
  for (const auto& [signer, target] : signer_target_pairs) {
    Attestation a;
    a.signer = signer;
    a.target = target;
    a.mac = authority.sign(signer, target, kPrefix, AttestationAuthority::chain_digest(chain));
    chain.push_back(a);
  }
  return chain;
}

TEST(Attestations, CodecRoundTrip) {
  AttestationAuthority authority;
  const auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  EXPECT_EQ(decode_attestations(encode_attestations(chain)), chain);
}

TEST(Attestations, ValidChainVerifies) {
  AttestationAuthority authority;
  const auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  EXPECT_TRUE(authority.verify_chain(chain, kPrefix, 3));
}

TEST(Attestations, EmptyChainInvalid) {
  AttestationAuthority authority;
  EXPECT_FALSE(authority.verify_chain({}, kPrefix, 3));
}

TEST(Attestations, WrongReceiverFails) {
  AttestationAuthority authority;
  const auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  EXPECT_FALSE(authority.verify_chain(chain, kPrefix, 4));
}

TEST(Attestations, TamperedMacFails) {
  AttestationAuthority authority;
  auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  chain[0].mac ^= 1;
  EXPECT_FALSE(authority.verify_chain(chain, kPrefix, 3));
}

TEST(Attestations, TruncatedChainFails) {
  // Dropping the first hop (a path-shortening attack) must not verify.
  AttestationAuthority authority;
  auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  chain.erase(chain.begin());
  EXPECT_FALSE(authority.verify_chain(chain, kPrefix, 3));
}

TEST(Attestations, ReorderedChainFails) {
  AttestationAuthority authority;
  auto chain = make_chain(authority, {{1, 2}, {2, 3}, {3, 4}});
  std::swap(chain[0], chain[1]);
  EXPECT_FALSE(authority.verify_chain(chain, kPrefix, 4));
}

TEST(Attestations, SpoofedSignerFails) {
  // An attacker (AS 666) without AS 1's key forging an origin attestation.
  AttestationAuthority authority;
  AttestationAuthority attacker(0xbad5eed);
  std::vector<Attestation> chain;
  Attestation forged;
  forged.signer = 1;
  forged.target = 3;
  forged.mac = attacker.sign(1, 3, kPrefix, AttestationAuthority::chain_digest(chain));
  chain.push_back(forged);
  EXPECT_FALSE(authority.verify_chain(chain, kPrefix, 3));
}

TEST(Attestations, DifferentPrefixFails) {
  AttestationAuthority authority;
  const auto chain = make_chain(authority, {{1, 2}, {2, 3}});
  EXPECT_FALSE(authority.verify_chain(chain, *net::Prefix::parse("10.0.0.0/8"), 3));
}

TEST(BgpSecModule, ValidChainBreaksTiesAtEqualLength) {
  // Security is the tie-break, not the primary criterion (Lychev et al.,
  // the paper's [31]: "security 1st" in partial deployment is unstable).
  AttestationAuthority authority;
  BgpSecModule module({3, ia::IslandId::from_as(3), false}, &authority);
  core::IaRoute secure, insecure;
  secure.ia.destination = kPrefix;
  secure.ia.set_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation,
                                encode_attestations(make_chain(authority, {{1, 2}, {2, 3}})));
  secure.ia.path_vector.prepend_as(1);
  secure.ia.path_vector.prepend_as(2);
  insecure.ia.destination = kPrefix;
  insecure.ia.path_vector.prepend_as(4);  // same length, unsigned
  insecure.ia.path_vector.prepend_as(5);
  EXPECT_TRUE(module.chain_valid(secure));
  EXPECT_FALSE(module.chain_valid(insecure));
  EXPECT_TRUE(module.better(secure, insecure));
  EXPECT_FALSE(module.better(insecure, secure));
  // A shorter insecure route still wins (stability over security).
  core::IaRoute shorter;
  shorter.ia.destination = kPrefix;
  shorter.ia.path_vector.prepend_as(9);
  EXPECT_TRUE(module.better(shorter, secure));
}

// End-to-end over the simnet: contiguous secure deployment verifies; a gulf
// in the middle breaks the chain — the Section 3.5 limitation D-BGP cannot
// remove (it can only carry the attestations, not repair trust).
struct SecureChainFixture {
  AttestationAuthority authority;
  simnet::DbgpNetwork net;

  void add_secure(bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = ia::IslandId::from_as(asn);
    config.island_protocol = ia::kProtoBgpSec;
    config.active_protocol = ia::kProtoBgpSec;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<BgpSecModule>(
        BgpSecModule::Config{asn, ia::IslandId::from_as(asn), false}, &authority));
  }

  void add_gulf(bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<BgpModule>());
  }
};

TEST(BgpSecGulf, ContiguousDeploymentVerifies) {
  SecureChainFixture fix;
  for (bgp::AsNumber asn : {1, 2, 3}) fix.add_secure(asn);
  fix.net.add_link(1, 2);
  fix.net.add_link(2, 3);
  fix.net.originate(1, kPrefix);
  fix.net.run_to_convergence();

  const auto* best = fix.net.speaker(3).best(kPrefix);
  ASSERT_NE(best, nullptr);
  BgpSecModule verifier({3, ia::IslandId::from_as(3), false}, &fix.authority);
  EXPECT_TRUE(verifier.chain_valid(*best));
}

TEST(BgpSecGulf, GulfBreaksChainEvenWithPassThrough) {
  SecureChainFixture fix;
  fix.add_secure(1);
  fix.add_gulf(2);  // gulf AS passes attestations through but cannot sign
  fix.add_secure(3);
  fix.net.add_link(1, 2);
  fix.net.add_link(2, 3);
  fix.net.originate(1, kPrefix);
  fix.net.run_to_convergence();

  const auto* best = fix.net.speaker(3).best(kPrefix);
  ASSERT_NE(best, nullptr);
  // Pass-through preserved the descriptor...
  EXPECT_NE(best->ia.find_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation),
            nullptr);
  // ...but the chain targets AS 2, not AS 3, so verification fails at AS 3.
  BgpSecModule verifier({3, ia::IslandId::from_as(3), false}, &fix.authority);
  EXPECT_FALSE(verifier.chain_valid(*best));
}

TEST(BgpSecModule, DropTowardInsecureRemovesDescriptor) {
  AttestationAuthority authority;
  BgpSecModule module({5, ia::IslandId::from_as(5), /*drop_toward_insecure=*/true},
                      &authority);
  core::IaRoute best;
  best.ia.destination = kPrefix;
  best.ia.set_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation,
                              encode_attestations(make_chain(authority, {{1, 5}})));
  ia::IntegratedAdvertisement out = best.ia;
  core::ExportContext ctx;
  ctx.own_as = 5;
  ctx.to_peer_as = 9;
  ctx.to_peer_in_same_island = false;
  module.annotate_export(best, out, ctx);
  EXPECT_EQ(out.find_path_descriptor(ia::kProtoBgpSec, ia::keys::kBgpSecAttestation), nullptr);
}

}  // namespace
}  // namespace dbgp::protocols
