// Causal-trace suite: the structural invariants the span/audit model of
// telemetry/causal.h promises (DESIGN.md §10). Built as the separate
// `dbgp_trace_tests` binary carrying the `trace` ctest label so CI can
// select it with `ctest -L trace` and re-run exactly this surface under
// DBGP_SANITIZE=address.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "protocols/bgp_module.h"
#include "scenario/parser.h"
#include "scenario/runner.h"
#include "simnet/network.h"
#include "telemetry/causal.h"
#include "telemetry/perfetto_export.h"
#include "telemetry/provenance.h"

namespace dbgp::telemetry {
namespace {

core::DbgpConfig bgp_as(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;
}

// A traced 4-AS line, converged on one prefix.
struct TracedLine {
  CausalTracer tracer;
  std::unique_ptr<simnet::DbgpNetwork> net;
  net::Prefix prefix = *net::Prefix::parse("10.0.0.0/8");

  explicit TracedLine(simnet::DeliveryMode mode = simnet::DeliveryMode::kImmediate) {
    simnet::DbgpNetwork::Options options;
    options.causal = &tracer;
    options.delivery = mode;
    net = std::make_unique<simnet::DbgpNetwork>(nullptr, options);
    for (bgp::AsNumber asn = 1; asn <= 4; ++asn) {
      net->add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
    }
    for (bgp::AsNumber asn = 1; asn < 4; ++asn) net->add_link(asn, asn + 1);
    net->originate(1, prefix);
    net->run_to_convergence();
  }
};

std::string scenario_path(const char* name) {
  return std::string(DBGP_SCENARIO_DIR "/") + name;
}

// -- Span-graph invariants ----------------------------------------------------

TEST(CausalInvariants, ParentsAreLiveAndNotLater) {
  TracedLine line;
  const auto spans = line.tracer.spans();
  ASSERT_FALSE(spans.empty());
  for (const Span& s : spans) {
    ASSERT_EQ(spans[s.id - 1].id, s.id);  // ids dense from 1
    if (s.parent == 0) continue;
    // Every non-root parent id resolves to a stored span that started no
    // later than its child — a child cannot causally precede its cause.
    ASSERT_LE(s.parent, spans.size()) << "span " << s.id << " has dangling parent";
    EXPECT_LE(spans[s.parent - 1].start, s.start);
  }
}

TEST(CausalInvariants, TraceIdsInheritFromRoots) {
  TracedLine line;
  const auto spans = line.tracer.spans();
  for (const Span& s : spans) {
    if (s.parent == 0) {
      EXPECT_EQ(s.trace, s.id);  // a root's trace id is its own id
    } else {
      EXPECT_EQ(s.trace, spans[s.parent - 1].trace);
    }
  }
}

TEST(CausalInvariants, NonOriginSpansDescendFromAnOrigination) {
  TracedLine line;
  const auto spans = line.tracer.spans();
  for (const Span& s : spans) {
    if (s.kind != SpanKind::kFrame && s.kind != SpanKind::kDecision) continue;
    // Walk up: every frame/decision in a fault-free run must be rooted in
    // the origination (no orphaned updates).
    const Span* cur = &s;
    while (cur->parent != 0) cur = &spans[cur->parent - 1];
    EXPECT_EQ(cur->kind, SpanKind::kOrigination)
        << "span " << s.id << " (" << s.name << ") roots at " << cur->name;
  }
}

TEST(CausalInvariants, WhyChainStartsAtOriginationWithMonotoneTime) {
  TracedLine line;
  const ProvenanceIndex index(line.tracer);
  const auto chain = index.why(4, line.prefix.to_string());
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain.front().span->kind, SpanKind::kOrigination);
  EXPECT_EQ(chain.front().span->as, 1u);
  ASSERT_NE(chain.back().audit, nullptr);
  EXPECT_EQ(chain.back().audit->as, 4u);
  double t = chain.front().span->start;
  for (const auto& step : chain) {
    ASSERT_NE(step.span, nullptr);
    EXPECT_GE(step.span->start, t) << "time went backward along the chain";
    t = step.span->start;
  }
  // The wire hops appear in topology order: 1->2, 2->3, 3->4.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hops;
  for (const auto& step : chain) {
    if (step.span->kind == SpanKind::kFrame) {
      hops.emplace_back(step.span->as, step.span->peer_as);
    }
  }
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> want = {
      {1, 2}, {2, 3}, {3, 4}};
  EXPECT_EQ(hops, want);
}

// -- Delivery-mode equivalence ------------------------------------------------

// The causal DAG a fault-free run produces must not depend on the delivery
// mode: batched coalesces *when* decisions run, not *why*. Compare the shape
// of every AS's why-chain (kinds, actors, names) modulo span renumbering.
TEST(CausalInvariants, ImmediateAndBatchedYieldSameCausalChains) {
  TracedLine immediate(simnet::DeliveryMode::kImmediate);
  TracedLine batched(simnet::DeliveryMode::kBatched);
  const ProvenanceIndex a(immediate.tracer);
  const ProvenanceIndex b(batched.tracer);
  const std::string prefix = immediate.prefix.to_string();
  for (std::uint32_t as = 1; as <= 4; ++as) {
    const auto ca = a.why(as, prefix);
    const auto cb = b.why(as, prefix);
    ASSERT_EQ(ca.size(), cb.size()) << "AS" << as;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      EXPECT_EQ(ca[i].span->kind, cb[i].span->kind) << "AS" << as << " step " << i;
      EXPECT_EQ(ca[i].span->as, cb[i].span->as) << "AS" << as << " step " << i;
      EXPECT_EQ(ca[i].span->peer_as, cb[i].span->peer_as);
      EXPECT_EQ(ca[i].span->name, cb[i].span->name);
      ASSERT_EQ(ca[i].audit == nullptr, cb[i].audit == nullptr);
      if (ca[i].audit != nullptr) {
        EXPECT_EQ(ca[i].audit->best_path, cb[i].audit->best_path);
        EXPECT_EQ(ca[i].audit->selected, cb[i].audit->selected);
      }
    }
  }
}

// -- Audit/RIB agreement ------------------------------------------------------

// The last audit for every (AS, prefix) must describe exactly what the RIB
// holds after the run — including under churn, where the trail of audits is
// long and interleaved with losses and session resets.
void expect_audits_agree_with_rib(scenario::Runner& runner) {
  std::map<std::pair<std::uint32_t, std::string>, const DecisionAudit*> last;
  const auto audits = runner.causal().audits();
  for (const auto& a : audits) last[{a.as, a.prefix}] = &a;
  ASSERT_FALSE(last.empty());
  for (const auto& [key, audit] : last) {
    const auto& [as, prefix_text] = key;
    const auto prefix = net::Prefix::parse(prefix_text);
    ASSERT_TRUE(prefix.has_value());
    const auto* best = runner.network().speaker(as).best(*prefix);
    if (best == nullptr) {
      EXPECT_TRUE(audit->best_path.empty())
          << "AS" << as << " audit says " << audit->best_path << ", RIB says none";
    } else {
      EXPECT_EQ(audit->best_path, best->ia.path_vector.to_string()) << "AS" << as;
      EXPECT_NE(audit->best_via, 0u);
    }
  }
}

TEST(CausalInvariants, AuditsAgreeWithRibFaultFree) {
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets.dbgp")));
  const auto result = runner.run();
  ASSERT_TRUE(result.all_passed() && result.converged);
  expect_audits_agree_with_rib(runner);
}

TEST(CausalInvariants, AuditsAgreeWithRibUnderChurn) {
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets_churn.dbgp")));
  const auto result = runner.run();
  ASSERT_TRUE(result.all_passed() && result.converged);
  expect_audits_agree_with_rib(runner);
}

TEST(CausalInvariants, ChurnWindowsAreAllAttributed) {
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets_churn.dbgp")));
  ASSERT_TRUE(runner.run().converged);
  const ProvenanceIndex index(runner.causal());
  const auto windows = index.reconvergence_windows();
  ASSERT_FALSE(windows.empty());
  for (const auto& w : windows) {
    EXPECT_FALSE(w.disruptions.empty())
        << "window at t=" << w.window->start << " has no attributed disruption";
    EXPECT_NE(w.window->parent, 0u);  // the opening disruption is the parent
  }
}

// -- Tracer mechanics ---------------------------------------------------------

TEST(CausalTracerTest, CapCountsDropsButKeepsMintingIds) {
  CausalTracer tracer(/*limit=*/2);
  const SpanId a = tracer.begin_span(SpanKind::kOrigination, 0, 0.0, 1, 0, "originate");
  const SpanId b = tracer.begin_span(SpanKind::kFrame, a, 0.0, 1, 2, "announce");
  const SpanId c = tracer.begin_span(SpanKind::kFrame, a, 0.1, 1, 3, "announce");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(c, 3u);  // minted past the cap so causality stays consistent
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.end_span(c, 0.2);  // no-op, must not crash
  EXPECT_EQ(tracer.trace_of(c), 0u);
  for (int i = 0; i < 3; ++i) {  // audits have their own cap at the same limit
    DecisionAudit audit;
    audit.span = b;
    tracer.record_audit(std::move(audit));
  }
  EXPECT_EQ(tracer.audit_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(CausalTracerTest, DuplicateDeliveryLastEndWins) {
  CausalTracer tracer;
  const SpanId s = tracer.begin_span(SpanKind::kFrame, 0, 0.0, 1, 2, "announce");
  tracer.end_span(s, 0.5);
  tracer.end_span(s, 0.7);  // the duplicated copy arrives later
  EXPECT_DOUBLE_EQ(tracer.spans()[0].end, 0.7);
}

TEST(CausalTracerTest, DisabledTracingRecordsNothing) {
  simnet::DbgpNetwork net;  // options.causal defaults to nullptr
  net.add_as(bgp_as(1)).add_module(std::make_unique<protocols::BgpModule>());
  net.add_as(bgp_as(2)).add_module(std::make_unique<protocols::BgpModule>());
  net.add_link(1, 2);
  net.originate(1, *net::Prefix::parse("10.0.0.0/8"));
  net.run_to_convergence();
  EXPECT_EQ(net.speaker(2).causal(), nullptr);
}

// -- Perfetto export ----------------------------------------------------------

TEST(PerfettoExport, EmitsSortedEventsWithTraceEventKeys) {
  TracedLine line;
  const std::string json = to_perfetto_json(line.tracer);
  // Structural spot-checks (tools/trace_check is the full validator).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  // B and E counts must match for the viewers to nest correctly.
  std::size_t b = 0, e = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) != std::string::npos;
       pos += 8) {
    ++b;
  }
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) != std::string::npos;
       pos += 8) {
    ++e;
  }
  EXPECT_EQ(b, e);
  EXPECT_GT(b, 0u);
}

}  // namespace
}  // namespace dbgp::telemetry
