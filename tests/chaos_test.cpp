// Chaos-layer tests: the Link/Options API, fault injection, crash recovery,
// and the determinism guarantees DESIGN.md §9 promises. Built as the
// separate `dbgp_chaos_tests` binary carrying the `chaos` ctest label so CI
// can re-run exactly this surface under DBGP_SANITIZE=address
// (the fault paths shuffle shared frames around enough to deserve it).
#include <gtest/gtest.h>

#include <vector>

#include "protocols/bgp_module.h"
#include "scenario/parser.h"
#include "scenario/runner.h"
#include "simnet/chaos.h"
#include "simnet/network.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dbgp::simnet {
namespace {

core::DbgpConfig bgp_as(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;
}

DbgpNetwork make_line(std::size_t n, DbgpNetwork::Options options = {}) {
  DbgpNetwork net(nullptr, options);
  for (bgp::AsNumber asn = 1; asn <= n; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn < n; ++asn) net.add_link(asn, asn + 1);
  return net;
}

bool same_churn(const RunStats& a, const RunStats& b) {
  return a.processed == b.processed && a.link_flaps == b.link_flaps &&
         a.crashes == b.crashes && a.restarts == b.restarts &&
         a.frames_lost == b.frames_lost && a.frames_duplicated == b.frames_duplicated &&
         a.frames_reordered == b.frames_reordered &&
         a.frames_corrupted == b.frames_corrupted &&
         a.frames_rejected == b.frames_rejected;
}

bool same_trace(const std::vector<telemetry::TraceEvent>& a,
                const std::vector<telemetry::TraceEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].from_as != b[i].from_as ||
        a[i].to_as != b[i].to_as || a[i].frame_type != b[i].frame_type ||
        a[i].prefix != b[i].prefix || a[i].frame_bytes != b[i].frame_bytes ||
        a[i].understood != b[i].understood) {
      return false;
    }
  }
  return true;
}

// -- Link API -----------------------------------------------------------------

TEST(LinkApi, AddLinkOncePerPair) {
  DbgpNetwork net = make_line(2);
  EXPECT_THROW(net.add_link(1, 2), std::invalid_argument);
  EXPECT_THROW(net.add_link(2, 1), std::invalid_argument);  // normalized key
  EXPECT_NE(net.find_link(2, 1), nullptr);
  EXPECT_EQ(net.find_link(1, 3), nullptr);
  EXPECT_THROW(net.link(1, 3), std::out_of_range);
}

TEST(LinkApi, DisconnectReconnectRestoresRoutes) {
  DbgpNetwork::Options options;
  telemetry::PropagationTracer tracer;
  options.tracer = &tracer;
  DbgpNetwork net = make_line(3, options);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);
  const auto path_before = net.speaker(3).best(prefix)->ia.path_vector.to_string();

  net.link(2, 3).set_state(LinkState::kDown);
  net.run_to_convergence();
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);
  EXPECT_EQ(net.link(2, 3).stats().flaps, 1u);

  const std::size_t trace_before_reconnect = tracer.size();
  net.link(2, 3).set_state(LinkState::kUp);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);
  EXPECT_EQ(net.speaker(3).best(prefix)->ia.path_vector.to_string(), path_before);

  // Trace-verified: the restored session re-announced over the 2-3 link.
  bool resynced = false;
  const auto events = tracer.events();
  for (std::size_t i = trace_before_reconnect; i < events.size(); ++i) {
    resynced |= events[i].from_as == 2 && events[i].to_as == 3 &&
                events[i].frame_type == "announce" && events[i].prefix == "10.0.0.0/8";
  }
  EXPECT_TRUE(resynced);
}

TEST(LinkApi, WithdrawUnderBatching) {
  DbgpNetwork::Options options;
  options.delivery = DeliveryMode::kBatched;
  DbgpNetwork net = make_line(4, options);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  for (bgp::AsNumber asn = 2; asn <= 4; ++asn) {
    ASSERT_NE(net.speaker(asn).best(prefix), nullptr) << "AS" << asn;
  }
  net.withdraw(1, prefix);
  net.run_to_convergence();
  for (bgp::AsNumber asn = 1; asn <= 4; ++asn) {
    EXPECT_EQ(net.speaker(asn).best(prefix), nullptr) << "AS" << asn;
  }
}

// Tearing a link down while the far speaker still has staged-but-undecided
// frames must not leave routes learned over that link selected.
TEST(LinkApi, MidBatchDisconnectLeavesNoStaleRoutes) {
  DbgpNetwork::Options options;
  options.delivery = DeliveryMode::kBatched;
  DbgpNetwork net = make_line(3, options);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  // Process exactly the first delivery at AS2: the frame is staged (adj-in
  // updated, decision pending) and the coalesced flush has not fired yet.
  const RunStats partial = net.run_to_convergence(1);
  ASSERT_TRUE(partial.capped);
  ASSERT_EQ(net.speaker(2).pending_batch(), 1u);

  net.link(1, 2).set_state(LinkState::kDown);
  net.run_to_convergence();
  EXPECT_EQ(net.speaker(2).pending_batch(), 0u);
  EXPECT_EQ(net.speaker(2).best(prefix), nullptr);
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);
}

// -- Corruption ---------------------------------------------------------------

// Fuzz-style: every corrupt_frame output must be rejected by the decode
// layer without touching the receiver's adj-in or selected routes.
TEST(Corruption, RejectedWithoutStateChange) {
  DbgpNetwork net = make_line(2);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  auto& receiver = net.speaker(2);
  ASSERT_NE(receiver.best(prefix), nullptr);
  const auto selected_before = receiver.selected_prefixes();
  const auto db_size_before = receiver.ia_db().prefixes().size();

  // A real announce (from a standalone origin speaker — the in-net one has
  // already synced, so its adj-out delta-suppresses a re-emission) and a
  // real withdraw.
  core::DbgpSpeaker sender(bgp_as(9));
  sender.add_module(std::make_unique<protocols::BgpModule>());
  sender.add_peer(2);
  auto announce = sender.originate(prefix);
  ASSERT_FALSE(announce.empty());
  const std::vector<std::uint8_t> announce_bytes = announce[0].bytes();
  const std::vector<std::uint8_t> withdraw_bytes =
      core::DbgpSpeaker::encode_withdraw(prefix);

  util::Rng rng(1234);
  int rejected = 0;
  for (int i = 0; i < 300; ++i) {
    const auto& original = (i % 2 == 0) ? announce_bytes : withdraw_bytes;
    const auto mangled = corrupt_frame(original, rng);
    EXPECT_THROW(
        {
          try {
            receiver.handle_frame(0, mangled);
          } catch (const util::DecodeError&) {
            ++rejected;
            throw;
          }
        },
        util::DecodeError)
        << "iteration " << i;
  }
  EXPECT_EQ(rejected, 300);
  EXPECT_EQ(receiver.selected_prefixes(), selected_before);
  EXPECT_EQ(receiver.ia_db().prefixes().size(), db_size_before);
  ASSERT_NE(receiver.best(prefix), nullptr);
}

TEST(Corruption, CountedAndRejectedInFlight) {
  DbgpNetwork net = make_line(3);
  net.link(1, 2).set_faults({/*loss=*/0.0, /*duplicate=*/0.0, /*reorder=*/0.0,
                             /*corrupt=*/1.0},
                            99);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  const RunStats stats = net.run_to_convergence();
  EXPECT_GT(stats.frames_corrupted, 0u);
  EXPECT_EQ(stats.frames_corrupted, stats.frames_rejected);
  EXPECT_EQ(stats.frames_corrupted, net.link(1, 2).stats().frames_corrupted);
  // Every frame 1->2 was mangled, so AS2 (and AS3 behind it) learned nothing.
  EXPECT_EQ(net.speaker(2).best(prefix), nullptr);
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);
}

// -- Crash / restart ----------------------------------------------------------

TEST(NodeChurn, CrashRestartRelearnsFromPeers) {
  DbgpNetwork net = make_line(3);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);

  net.crash(2);
  const RunStats after_crash = net.run_to_convergence();
  EXPECT_FALSE(net.node_up(2));
  EXPECT_EQ(after_crash.crashes, 1u);
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);

  net.restart(2);
  const RunStats after_restart = net.run_to_convergence();
  EXPECT_TRUE(net.node_up(2));
  EXPECT_EQ(after_restart.restarts, 1u);
  // The wiped RIB re-learned everything from its peers' refresh sync.
  ASSERT_NE(net.speaker(2).best(prefix), nullptr);
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);
}

TEST(NodeChurn, ResetRoutesKeepsConfiguration) {
  DbgpNetwork net = make_line(2);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  auto& speaker = net.speaker(1);
  ASSERT_NE(speaker.best(prefix), nullptr);

  speaker.reset_routes();
  EXPECT_EQ(speaker.best(prefix), nullptr);       // learned/selected state gone
  EXPECT_EQ(speaker.peer_count(), 1u);            // peer roster survives
  EXPECT_EQ(speaker.ia_db().prefixes().size(), 0u);
  // Originations survive as config: reevaluate re-announces them.
  const auto out = speaker.reevaluate_all();
  EXPECT_FALSE(out.empty());
  EXPECT_NE(speaker.best(prefix), nullptr);
}

// -- Determinism --------------------------------------------------------------

ChaosOptions stress_chaos() {
  ChaosOptions chaos;
  chaos.seed = 7;
  chaos.horizon = 2.0;
  chaos.flap_fraction = 0.5;
  chaos.mean_up = 0.3;
  chaos.mean_down = 0.05;
  chaos.faults.loss = 0.05;
  chaos.faults.duplicate = 0.03;
  chaos.faults.reorder = 0.05;
  chaos.faults.corrupt = 0.05;
  chaos.crash_fraction = 0.3;
  chaos.mean_downtime = 0.3;
  return chaos;
}

struct SeededRun {
  RunStats stats;
  std::vector<telemetry::TraceEvent> trace;
  std::string table;
};

SeededRun run_seeded(const ChaosOptions& chaos, DeliveryMode mode) {
  telemetry::PropagationTracer tracer;
  DbgpNetwork::Options options;
  options.delivery = mode;
  options.tracer = &tracer;
  DbgpNetwork net = make_line(5, options);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  ChaosPolicy policy(chaos);
  policy.inject(net);
  SeededRun result;
  result.stats = net.run_to_convergence();
  result.trace = tracer.events();
  const auto* best = net.speaker(5).best(prefix);
  result.table = best == nullptr ? "unreachable" : best->ia.path_vector.to_string();
  return result;
}

TEST(Determinism, SameSeedReplaysBitIdentically) {
  const SeededRun a = run_seeded(stress_chaos(), DeliveryMode::kImmediate);
  const SeededRun b = run_seeded(stress_chaos(), DeliveryMode::kImmediate);
  EXPECT_TRUE(same_churn(a.stats, b.stats));
  EXPECT_TRUE(same_trace(a.trace, b.trace));
  EXPECT_EQ(a.table, b.table);
  EXPECT_GT(a.stats.link_flaps, 0u);  // the schedule actually did something
}

TEST(Determinism, ChurnCountersMatchAcrossDeliveryModes) {
  // Faults are drawn at dispatch time, before the delivery-mode choice, so
  // the physical fault schedule is identical in both modes (event totals
  // differ: batching coalesces decisions).
  const SeededRun immediate = run_seeded(stress_chaos(), DeliveryMode::kImmediate);
  const SeededRun batched = run_seeded(stress_chaos(), DeliveryMode::kBatched);
  EXPECT_EQ(immediate.stats.link_flaps, batched.stats.link_flaps);
  EXPECT_EQ(immediate.stats.crashes, batched.stats.crashes);
  EXPECT_EQ(immediate.stats.restarts, batched.stats.restarts);
  EXPECT_EQ(immediate.table, batched.table);
}

TEST(Determinism, ZeroChaosLeavesRunsUntouched) {
  SeededRun plain;
  {
    telemetry::PropagationTracer tracer;
    DbgpNetwork::Options options;
    options.tracer = &tracer;
    DbgpNetwork net = make_line(5, options);
    const auto prefix = *net::Prefix::parse("10.0.0.0/8");
    net.originate(1, prefix);
    plain.stats = net.run_to_convergence();
    plain.trace = tracer.events();
  }
  const SeededRun with_zero_chaos = run_seeded(ChaosOptions{}, DeliveryMode::kImmediate);
  EXPECT_TRUE(same_trace(plain.trace, with_zero_chaos.trace));
  EXPECT_EQ(plain.stats.processed, with_zero_chaos.stats.processed);
  EXPECT_EQ(with_zero_chaos.stats.link_flaps, 0u);
  EXPECT_EQ(with_zero_chaos.stats.frames_lost, 0u);
}

TEST(Determinism, ReconvergenceHistogramRecords) {
  auto& registry = telemetry::MetricsRegistry::global();
  registry.reset();
  DbgpNetwork net = make_line(3);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  net.link(2, 3).refresh();
  net.run_to_convergence();
  const auto snapshot = registry.snapshot();
  const auto* hist = snapshot.find_histogram("simnet.chaos.reconvergence_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->count, 0u);
}

// -- Scenario integration -----------------------------------------------------

scenario::Scenario load_churn_scenario() {
  return scenario::load_scenario(std::string(DBGP_SCENARIO_DIR) +
                                 "/figure8_pathlets_churn.dbgp");
}

TEST(ChurnScenario, ReconvergesToFailFreePathsBothModes) {
  for (const DeliveryMode mode : {DeliveryMode::kImmediate, DeliveryMode::kBatched}) {
    scenario::Runner runner;
    runner.set_delivery(mode);
    runner.build(load_churn_scenario());
    const auto result = runner.run();
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.all_passed())
        << (mode == DeliveryMode::kBatched ? "batched" : "immediate") << " mode: "
        << result.failures() << " expectation(s) failed";
    EXPECT_GT(result.stats.link_flaps, 0u);
  }
}

TEST(ChurnScenario, SeedOverrideChangesScheduleDeterministically) {
  auto run_with_seed = [&](std::uint64_t seed) {
    scenario::Runner runner;
    runner.set_chaos_seed(seed);
    runner.build(load_churn_scenario());
    return runner.run();
  };
  const auto a1 = run_with_seed(5);
  const auto a2 = run_with_seed(5);
  EXPECT_TRUE(same_churn(a1.stats, a2.stats));
  EXPECT_TRUE(a1.all_passed());
  EXPECT_TRUE(a2.all_passed());
}

}  // namespace
}  // namespace dbgp::simnet
