#include <gtest/gtest.h>

#include "core/speaker.h"
#include "protocols/bgp_module.h"

namespace dbgp::core {
namespace {

using protocols::BgpModule;

DbgpConfig gulf_config(bgp::AsNumber asn) {
  DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;  // no island: a gulf AS
}

ia::IntegratedAdvertisement make_ia(const char* prefix, std::vector<bgp::AsNumber> path) {
  ia::IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse(prefix);
  for (auto it = path.rbegin(); it != path.rend(); ++it) ia.path_vector.prepend_as(*it);
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(path.empty() ? 1 : path.front());
  return ia;
}

TEST(DbgpSpeaker, OriginationAnnouncesToAllPeers) {
  DbgpSpeaker speaker(gulf_config(100));
  speaker.add_module(std::make_unique<BgpModule>());
  speaker.add_peer(200);
  speaker.add_peer(300);
  const auto out = speaker.originate(*net::Prefix::parse("10.0.0.0/8"));
  ASSERT_EQ(out.size(), 2u);
  const auto ia = ia::decode_ia(std::span(out[0].bytes()).subspan(1));
  EXPECT_EQ(ia.destination.to_string(), "10.0.0.0/8");
  EXPECT_TRUE(ia.path_vector.contains_as(100));
}

TEST(DbgpSpeaker, PassThroughPreservesUnknownProtocolControlInfo) {
  // THE core invariant (CF-R1): a gulf AS with no module for protocol 77
  // must forward its descriptors unmodified.
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = speaker.add_peer(49);
  speaker.add_peer(51);

  auto ia = make_ia("10.0.0.0/8", {49, 48});
  ia.set_path_descriptor(77, 1, {0xca, 0xfe});
  ia.add_island_descriptor(ia::IslandId::assigned(9), 77, 2, {0xbe, 0xef});
  ia.add_membership({ia::IslandId::assigned(9), {48}, 77});

  const auto out = speaker.handle_ia(from, ia);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].peer, 1u);  // toward AS51 only (split horizon on 49)
  const auto forwarded = ia::decode_ia(std::span(out[0].bytes()).subspan(1));
  ASSERT_NE(forwarded.find_path_descriptor(77, 1), nullptr);
  EXPECT_EQ(forwarded.find_path_descriptor(77, 1)->value,
            (std::vector<std::uint8_t>{0xca, 0xfe}));
  ASSERT_NE(forwarded.find_island_descriptor(ia::IslandId::assigned(9), 77, 2), nullptr);
  EXPECT_NE(forwarded.find_membership(ia::IslandId::assigned(9)), nullptr);
  // Baseline updates still happened.
  EXPECT_TRUE(forwarded.path_vector.contains_as(50));
  EXPECT_EQ(forwarded.baseline.next_hop, net::Ipv4Address(50));
}

TEST(DbgpSpeaker, LoopDetectionDropsOwnAs) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = speaker.add_peer(49);
  const auto out = speaker.handle_ia(from, make_ia("10.0.0.0/8", {49, 50, 48}));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(speaker.stats().dropped_by_global_filter, 1u);
  EXPECT_EQ(speaker.best(*net::Prefix::parse("10.0.0.0/8")), nullptr);
}

TEST(DbgpSpeaker, LoopDetectionDropsOwnIsland) {
  DbgpConfig config = gulf_config(50);
  config.island = ia::IslandId::assigned(5);
  DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = speaker.add_peer(49);
  auto ia = make_ia("10.0.0.0/8", {49});
  ia.path_vector.prepend_island(ia::IslandId::assigned(5));
  EXPECT_TRUE(speaker.handle_ia(from, ia).empty());
  EXPECT_EQ(speaker.stats().dropped_by_global_filter, 1u);
}

TEST(DbgpSpeaker, StripProtocolFilterRemovesDescriptors) {
  // A gulf operator blocks protocol 77 by ID (Section 3.3).
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  speaker.import_filters().add("strip-77", strip_protocol_filter(77));
  const bgp::PeerId from = speaker.add_peer(49);
  speaker.add_peer(51);
  auto ia = make_ia("10.0.0.0/8", {49});
  ia.set_path_descriptor(77, 1, {1});
  ia.set_path_descriptor(78, 1, {2});
  const auto out = speaker.handle_ia(from, ia);
  ASSERT_EQ(out.size(), 1u);
  const auto forwarded = ia::decode_ia(std::span(out[0].bytes()).subspan(1));
  EXPECT_EQ(forwarded.find_path_descriptor(77, 1), nullptr);   // stripped
  EXPECT_NE(forwarded.find_path_descriptor(78, 1), nullptr);   // kept
}

TEST(DbgpSpeaker, IslandAbstractionAtEgress) {
  DbgpConfig config = gulf_config(12);
  config.island = ia::IslandId::assigned(5);
  config.abstract_island = true;
  config.island_members = {10, 11, 12};
  config.island_protocol = ia::kProtoScion;
  DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = speaker.add_peer(11, /*same_island=*/true);
  speaker.add_peer(99);  // across the gulf

  const auto out = speaker.handle_ia(from, make_ia("10.0.0.0/8", {11, 10}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].peer, 1u);
  const auto forwarded = ia::decode_ia(std::span(out[0].bytes()).subspan(1));
  // 12, 11, 10 all collapse into one island entry.
  ASSERT_EQ(forwarded.path_vector.elements().size(), 1u);
  EXPECT_EQ(forwarded.path_vector.elements()[0].kind, ia::PathElement::Kind::kIsland);
  const auto* membership = forwarded.find_membership(ia::IslandId::assigned(5));
  ASSERT_NE(membership, nullptr);
  EXPECT_EQ(membership->protocol, ia::kProtoScion);
  EXPECT_TRUE(membership->members.empty());  // hidden
}

TEST(DbgpSpeaker, MembershipStampWithoutAbstraction) {
  DbgpConfig config = gulf_config(12);
  config.island = ia::IslandId::assigned(5);
  config.island_protocol = ia::kProtoWiser;
  DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<BgpModule>());
  speaker.add_peer(99);
  const auto out = speaker.originate(*net::Prefix::parse("10.0.0.0/8"));
  ASSERT_EQ(out.size(), 1u);
  const auto forwarded = ia::decode_ia(std::span(out[0].bytes()).subspan(1));
  const auto* membership = forwarded.find_membership(ia::IslandId::assigned(5));
  ASSERT_NE(membership, nullptr);
  EXPECT_EQ(membership->members, std::vector<bgp::AsNumber>{12});
  EXPECT_TRUE(forwarded.path_vector.contains_as(12));  // PV kept per-AS
}

TEST(DbgpSpeaker, WithdrawRemovesAndPropagates) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = speaker.add_peer(49);
  speaker.add_peer(51);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  speaker.handle_ia(from, make_ia("10.0.0.0/8", {49}));
  ASSERT_NE(speaker.best(prefix), nullptr);

  const auto out = speaker.handle_frame(from, DbgpSpeaker::encode_withdraw(prefix));
  EXPECT_EQ(speaker.best(prefix), nullptr);
  ASSERT_EQ(out.size(), 1u);  // withdraw propagated to AS51
  EXPECT_EQ(out[0].bytes()[0], static_cast<std::uint8_t>(FrameType::kWithdraw));
}

TEST(DbgpSpeaker, SelectsShorterPathAndSwitchesBack) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId p1 = speaker.add_peer(49);
  const bgp::PeerId p2 = speaker.add_peer(48);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  speaker.handle_ia(p1, make_ia("10.0.0.0/8", {49, 40, 41}));
  EXPECT_EQ(speaker.best(prefix)->from_peer, p1);
  speaker.handle_ia(p2, make_ia("10.0.0.0/8", {48, 40}));
  EXPECT_EQ(speaker.best(prefix)->from_peer, p2);  // shorter
  speaker.handle_frame(p2, DbgpSpeaker::encode_withdraw(prefix));
  EXPECT_EQ(speaker.best(prefix)->from_peer, p1);  // falls back
}

TEST(DbgpSpeaker, PeerDownFlushesRoutes) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId p1 = speaker.add_peer(49);
  speaker.add_peer(51);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  speaker.handle_ia(p1, make_ia("10.0.0.0/8", {49}));
  ASSERT_NE(speaker.best(prefix), nullptr);
  const auto out = speaker.peer_down(p1);
  EXPECT_EQ(speaker.best(prefix), nullptr);
  ASSERT_EQ(out.size(), 1u);  // withdraw toward AS51
}

TEST(DbgpSpeaker, OutOfBandDisseminationUsesLookupService) {
  LookupService lookup;
  DbgpConfig sender_config = gulf_config(50);
  sender_config.dissemination = Dissemination::kOutOfBand;
  DbgpSpeaker sender(sender_config, &lookup);
  sender.add_module(std::make_unique<BgpModule>());
  sender.add_peer(60);

  DbgpSpeaker receiver(gulf_config(60), &lookup);
  receiver.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from_50 = receiver.add_peer(50);

  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  const auto out = sender.originate(prefix);
  ASSERT_EQ(out.size(), 1u);
  // The frame is a small notice; the IA lives in the lookup service.
  EXPECT_EQ(out[0].bytes()[0], static_cast<std::uint8_t>(FrameType::kNotice));
  EXPECT_LT(out[0].bytes().size(), 10u);
  EXPECT_EQ(lookup.put_count(), 1u);

  receiver.handle_frame(from_50, out[0].bytes());
  ASSERT_NE(receiver.best(prefix), nullptr);
  EXPECT_TRUE(receiver.best(prefix)->ia.path_vector.contains_as(50));
  EXPECT_EQ(receiver.stats().lookup_fetches, 1u);
  EXPECT_EQ(receiver.stats().lookup_misses, 0u);
}

TEST(DbgpSpeaker, NoticeWithoutLookupServiceIsMiss) {
  DbgpSpeaker receiver(gulf_config(60), nullptr);
  const bgp::PeerId from = receiver.add_peer(50);
  const auto out =
      receiver.handle_frame(from, DbgpSpeaker::encode_notice(*net::Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(receiver.stats().lookup_misses, 1u);
}

TEST(DbgpSpeaker, SyncPeerSendsFullTable) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId p1 = speaker.add_peer(49);
  speaker.handle_ia(p1, make_ia("10.0.0.0/8", {49}));
  speaker.originate(*net::Prefix::parse("192.168.0.0/16"));
  const bgp::PeerId p2 = speaker.add_peer(51);
  const auto out = speaker.sync_peer(p2);
  EXPECT_EQ(out.size(), 2u);
  for (const auto& msg : out) EXPECT_EQ(msg.peer, p2);
}

TEST(DbgpSpeaker, ActiveProtocolPerPrefixRange) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  speaker.set_active_protocol(*net::Prefix::parse("10.0.0.0/8"), ia::kProtoWiser);
  EXPECT_EQ(speaker.active_protocol_for(*net::Prefix::parse("10.1.0.0/16")), ia::kProtoWiser);
  EXPECT_EQ(speaker.active_protocol_for(*net::Prefix::parse("11.0.0.0/8")), ia::kProtoBgp);
}

TEST(DbgpSpeaker, DeltaSuppressionAvoidsDuplicateAnnouncements) {
  DbgpSpeaker speaker(gulf_config(50));
  speaker.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId p1 = speaker.add_peer(49);
  speaker.add_peer(51);
  const auto ia = make_ia("10.0.0.0/8", {49});
  const auto first = speaker.handle_ia(p1, ia);
  EXPECT_EQ(first.size(), 1u);
  const auto second = speaker.handle_ia(p1, ia);  // identical re-announce
  EXPECT_TRUE(second.empty());
}

TEST(GlobalFilters, MaxPathLengthFilter) {
  GlobalFilterChain chain;
  chain.add("max-len", max_path_length_filter(2));
  FilterContext ctx;
  auto short_ia = make_ia("10.0.0.0/8", {1, 2});
  auto long_ia = make_ia("10.0.0.0/8", {1, 2, 3});
  EXPECT_TRUE(chain.apply(short_ia, ctx));
  EXPECT_FALSE(chain.apply(long_ia, ctx));
}

}  // namespace
}  // namespace dbgp::core
