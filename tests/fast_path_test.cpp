// Advertisement fast-path properties: lazy zero-copy decode + splice
// re-encode, the frame cache's encode-once fan-out, and the batched update
// pipeline's equivalence with per-frame processing.
#include <gtest/gtest.h>

#include "core/speaker.h"
#include "ia/codec.h"
#include "ia/frame_cache.h"
#include "protocols/bgp_module.h"
#include "simnet/event_queue.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dbgp::ia {
namespace {

// Randomized IA: mixed path vector, memberships, and descriptors that
// include protocols no module in this process understands — the pass-through
// payloads CF-R1 is about.
IntegratedAdvertisement random_ia(util::Rng& rng) {
  IntegratedAdvertisement ia;
  ia.destination = net::Prefix(net::Ipv4Address(rng.next_u32()),
                               static_cast<std::uint8_t>(rng.next_below(33)));

  const std::size_t hops = 1 + rng.next_below(5);
  for (std::size_t i = 0; i < hops; ++i) {
    switch (rng.next_below(3)) {
      case 0:
        ia.path_vector.prepend_as(static_cast<bgp::AsNumber>(1 + rng.next_below(65000)));
        break;
      case 1:
        ia.path_vector.prepend_island(IslandId::assigned(1 + rng.next_below(100)));
        break;
      default:
        ia.path_vector.prepend_as_set({static_cast<bgp::AsNumber>(1 + rng.next_below(100)),
                                       static_cast<bgp::AsNumber>(101 + rng.next_below(100))});
        break;
    }
  }

  const std::size_t memberships = rng.next_below(3);
  for (std::size_t i = 0; i < memberships; ++i) {
    IslandMembership m;
    m.island = IslandId::assigned(1 + rng.next_below(50));
    m.protocol = static_cast<ProtocolId>(rng.next_below(4) == 0 ? 0 : kProtoWiser);
    const std::size_t members = rng.next_below(4);
    for (std::size_t j = 0; j < members; ++j) {
      m.members.push_back(static_cast<bgp::AsNumber>(1 + rng.next_below(65000)));
    }
    ia.add_membership(std::move(m));
  }

  ia.baseline.origin = rng.next_bool(0.5) ? bgp::Origin::kIgp : bgp::Origin::kEgp;
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(rng.next_u32());
  if (rng.next_bool(0.3)) ia.baseline.med = rng.next_below(100);

  auto random_blob = [&rng]() {
    std::vector<std::uint8_t> blob(1 + rng.next_below(300));
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.next_below(256));
    return blob;
  };
  // One payload reused across descriptors so the blob table's sharing path
  // (and its spliced layout) is exercised.
  const std::vector<std::uint8_t> shared = random_blob();

  const std::size_t path_descriptors = rng.next_below(4);
  for (std::size_t i = 0; i < path_descriptors; ++i) {
    // Mix known protocols with unknown ones (200+): pass-through payloads.
    const ProtocolId proto =
        rng.next_bool(0.5) ? kProtoWiser : static_cast<ProtocolId>(200 + rng.next_below(20));
    ia.set_path_descriptor(proto, static_cast<std::uint16_t>(i),
                           rng.next_bool(0.4) ? shared : random_blob());
  }
  const std::size_t island_descriptors = rng.next_below(3);
  for (std::size_t i = 0; i < island_descriptors; ++i) {
    const ProtocolId proto =
        rng.next_bool(0.5) ? kProtoScion : static_cast<ProtocolId>(220 + rng.next_below(20));
    ia.add_island_descriptor(IslandId::assigned(1 + rng.next_below(50)), proto,
                             static_cast<std::uint16_t>(i),
                             rng.next_bool(0.4) ? shared : random_blob());
  }
  return ia;
}

// THE splice property: a lazily decoded IA that was never edited re-encodes
// to exactly the bytes it arrived as — the pass-through fast path is
// invisible on the wire.
TEST(FastPath, SplicedReencodeMatchesEagerEncode) {
  util::Rng rng(20170821);  // SIGCOMM'17
  for (int round = 0; round < 200; ++round) {
    const IntegratedAdvertisement original = random_ia(rng);
    const auto eager = encode_ia(original);

    IntegratedAdvertisement decoded = decode_ia(eager);
    const auto spliced = encode_ia(decoded);
    ASSERT_EQ(spliced, eager) << "round " << round;
    // And the splice really was taken from the wire bytes, not a re-parse.
    EXPECT_EQ(decoded, original);
  }
}

TEST(FastPath, SplicedReencodeMatchesUnderCompression) {
  util::Rng rng(42);
  CodecOptions options;
  options.compress = true;
  for (int round = 0; round < 50; ++round) {
    IntegratedAdvertisement original = random_ia(rng);
    // Repetitive payload so the compressor engages on most rounds.
    original.set_path_descriptor(240, 9, std::vector<std::uint8_t>(600, 0x5a));
    const auto eager = encode_ia(original, options);
    IntegratedAdvertisement decoded = decode_ia(eager);
    ASSERT_EQ(encode_ia(decoded, options), eager) << "round " << round;
  }
}

TEST(FastPath, DecodeDefersDescriptorParsing) {
  util::Rng rng(7);
  IntegratedAdvertisement original = random_ia(rng);
  original.set_path_descriptor(201, 5, {1, 2, 3});  // ensure a non-trivial tail

  const IntegratedAdvertisement decoded = decode_ia(encode_ia(original));
  EXPECT_FALSE(decoded.descriptors_materialized());
  EXPECT_TRUE(decoded.has_opaque_tail());

  // Read access materializes but keeps the tail spliceable.
  EXPECT_FALSE(decoded.path_descriptors().empty());
  EXPECT_TRUE(decoded.descriptors_materialized());
  EXPECT_TRUE(decoded.has_opaque_tail());
}

TEST(FastPath, DescriptorEditInvalidatesSplice) {
  util::Rng rng(11);
  IntegratedAdvertisement original = random_ia(rng);
  original.set_path_descriptor(201, 5, {1, 2, 3});

  IntegratedAdvertisement decoded = decode_ia(encode_ia(original));
  decoded.set_path_descriptor(202, 1, {9});
  EXPECT_FALSE(decoded.has_opaque_tail());

  // Re-encode is canonical for the edited content.
  IntegratedAdvertisement expected = original;
  expected.set_path_descriptor(202, 1, {9});
  EXPECT_EQ(encode_ia(decoded), encode_ia(expected));
}

TEST(FastPath, NoOpStripKeepsSplice) {
  util::Rng rng(13);
  IntegratedAdvertisement original = random_ia(rng);
  original.set_path_descriptor(201, 5, {1, 2, 3});

  IntegratedAdvertisement decoded = decode_ia(encode_ia(original));
  // Removing descriptors of a protocol that carries none must not spoil the
  // fast path (strip filters run on every pass-through hop).
  decoded.remove_path_descriptors(77);
  decoded.remove_island_descriptors(77);
  EXPECT_TRUE(decoded.has_opaque_tail());
  EXPECT_EQ(encode_ia(decoded), encode_ia(original));
}

TEST(FastPath, BgpOnlyIaSkipsArenaEntirely) {
  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.0.0.0/8");
  ia.path_vector.prepend_as(65001);
  ia.baseline.next_hop = net::Ipv4Address(10, 0, 0, 1);

  const IntegratedAdvertisement decoded = decode_ia(encode_ia(ia));
  EXPECT_TRUE(decoded.descriptors_materialized());
  EXPECT_FALSE(decoded.has_opaque_tail());  // trivial tail, nothing retained
  EXPECT_EQ(decoded, ia);
}

// Lazy decode must not defer *validation*: malformed descriptor sections
// still fail inside decode_ia, exactly as the eager decoder did.
TEST(FastPath, MalformedTailFailsAtDecodeTime) {
  util::Rng rng(17);
  IntegratedAdvertisement original = random_ia(rng);
  original.set_path_descriptor(201, 5, {1, 2, 3});
  auto bytes = encode_ia(original);

  auto trailing = bytes;
  trailing.push_back(0x00);
  EXPECT_THROW(decode_ia(trailing), util::DecodeError);

  auto truncated = bytes;
  truncated.resize(truncated.size() - 2);
  EXPECT_THROW(decode_ia(truncated), util::DecodeError);
}

// -- Frame cache -------------------------------------------------------------

std::uint64_t cache_counter(const char* name) {
  const auto snapshot = telemetry::MetricsRegistry::global().snapshot();
  const auto* c = snapshot.find_counter(name);
  return c != nullptr ? c->value : 0;
}

TEST(FrameCache, EncodesOncePerDistinctAdvertisement) {
  util::Rng rng(23);
  const IntegratedAdvertisement ia = decode_ia(encode_ia(random_ia(rng)));

  FrameCache cache;
  int encodes = 0;
  const auto encoder = [&] {
    ++encodes;
    return encode_ia(ia);
  };
  const auto first = cache.get_or_encode(ia, {}, encoder);
  const auto second = cache.get_or_encode(ia, {}, encoder);
  EXPECT_EQ(encodes, 1);
  EXPECT_EQ(first.get(), second.get());  // the same shared frame, no copy
}

TEST(FrameCache, RewrittenAdvertisementMissesAndGetsOwnFrame) {
  util::Rng rng(29);
  const IntegratedAdvertisement base = decode_ia(encode_ia(random_ia(rng)));
  IntegratedAdvertisement rewritten = base;
  // An export-policy rewrite (e.g. a per-peer attestation) diverges the IA.
  rewritten.set_path_descriptor(230, 1, {0xaa});

  FrameCache cache;
  int encodes = 0;
  const auto frame_a =
      cache.get_or_encode(base, {}, [&] { ++encodes; return encode_ia(base); });
  const auto frame_b =
      cache.get_or_encode(rewritten, {}, [&] { ++encodes; return encode_ia(rewritten); });
  EXPECT_EQ(encodes, 2);
  EXPECT_NE(*frame_a, *frame_b);
  // Both entries stay warm for their respective peers.
  EXPECT_EQ(cache.get_or_encode(base, {}, [&] { ++encodes; return encode_ia(base); }).get(),
            frame_a.get());
  EXPECT_EQ(encodes, 2);
}

TEST(FrameCache, OptionsArePartOfTheKey) {
  util::Rng rng(31);
  const IntegratedAdvertisement ia = random_ia(rng);
  FrameCache cache;
  int encodes = 0;
  CodecOptions no_share;
  no_share.share_blobs = false;
  cache.get_or_encode(ia, {}, [&] { ++encodes; return encode_ia(ia, {}); });
  cache.get_or_encode(ia, no_share, [&] { ++encodes; return encode_ia(ia, no_share); });
  EXPECT_EQ(encodes, 2);
}

// Speaker-level: one decision fanning an advertisement out to N peers
// encodes once and reuses the frame N-1 times (visible in the
// dbgp.codec.frame_cache.{hits,misses} counters).
TEST(FrameCache, SpeakerFanOutHitsCache) {
  core::DbgpConfig config;
  config.asn = 65000;
  config.next_hop = net::Ipv4Address(10, 0, 0, 1);
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId from = speaker.add_peer(65001);
  for (int p = 1; p < 5; ++p) speaker.add_peer(65001 + p);

  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.1.0.0/16");
  ia.path_vector.prepend_as(65001);
  ia.baseline.next_hop = net::Ipv4Address(1, 1, 1, 1);
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();

  const std::uint64_t hits_before = cache_counter("dbgp.codec.frame_cache.hits");
  const std::uint64_t misses_before = cache_counter("dbgp.codec.frame_cache.misses");
  const auto out = speaker.handle_ia(from, ia);
  ASSERT_EQ(out.size(), 4u);  // split horizon toward the announcer
  // One encode for the first peer; the other three share it.
  EXPECT_EQ(cache_counter("dbgp.codec.frame_cache.misses") - misses_before, 1u);
  EXPECT_EQ(cache_counter("dbgp.codec.frame_cache.hits") - hits_before, 3u);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_EQ(out[i].frame.get(), out[0].frame.get());
  }
}

// When an export filter rewrites the IA differently per peer, each peer's
// frame must be encoded (and cached) separately — no stale shared frame.
TEST(FrameCache, PerPeerExportRewriteInvalidatesSharing) {
  core::DbgpConfig config;
  config.asn = 65000;
  config.next_hop = net::Ipv4Address(10, 0, 0, 1);
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId from = speaker.add_peer(65001);
  for (int p = 1; p < 4; ++p) speaker.add_peer(65001 + p);

  // Stamp the outgoing IA with the destination peer id (a stand-in for
  // peer-bound control information like BGPSec attestations).
  speaker.export_filters().add(
      "per-peer-stamp", [](IntegratedAdvertisement& ia, const core::FilterContext& ctx) {
        ia.set_path_descriptor(231, 1, {static_cast<std::uint8_t>(ctx.peer)});
        return true;
      });

  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.2.0.0/16");
  ia.path_vector.prepend_as(65001);
  ia.baseline.next_hop = net::Ipv4Address(1, 1, 1, 1);
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();

  const auto out = speaker.handle_ia(from, ia);
  ASSERT_EQ(out.size(), 3u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_NE(*out[i].frame, *out[j].frame);
    }
    // Each peer's frame decodes to an IA stamped with that peer's id.
    const auto decoded =
        decode_ia(std::span(out[i].frame->begin() + 1, out[i].frame->end()));
    const auto* stamp = decoded.find_path_descriptor(231, 1);
    ASSERT_NE(stamp, nullptr);
    EXPECT_EQ(stamp->value, std::vector<std::uint8_t>{
                                static_cast<std::uint8_t>(out[i].peer)});
  }
}

// -- Batched pipeline --------------------------------------------------------

// Batched staging + one flush must converge to the same routing state as
// processing every frame immediately.
TEST(BatchedPipeline, MatchesImmediateProcessing) {
  util::Rng rng(37);
  const auto make_speaker = [] {
    core::DbgpConfig config;
    config.asn = 65000;
    config.next_hop = net::Ipv4Address(10, 0, 0, 1);
    auto speaker = std::make_unique<core::DbgpSpeaker>(config);
    speaker->add_module(std::make_unique<protocols::BgpModule>());
    speaker->add_peer(65001);
    speaker->add_peer(65002);
    return speaker;
  };
  auto immediate = make_speaker();
  auto batched = make_speaker();

  std::vector<std::pair<bgp::PeerId, std::vector<std::uint8_t>>> frames;
  for (int i = 0; i < 64; ++i) {
    IntegratedAdvertisement ia;
    // A handful of prefixes so batching actually coalesces repeat updates.
    ia.destination = net::Prefix(net::Ipv4Address(10, 0, rng.next_below(8), 0), 24);
    ia.path_vector.prepend_as(static_cast<bgp::AsNumber>(65001 + rng.next_below(2)));
    ia.baseline.next_hop = net::Ipv4Address(1, 1, 1, static_cast<std::uint8_t>(i));
    ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
    frames.emplace_back(static_cast<bgp::PeerId>(rng.next_below(2)),
                        core::DbgpSpeaker::encode_announce(ia, {}));
  }

  for (const auto& [peer, bytes] : frames) immediate->handle_frame(peer, bytes);
  for (const auto& [peer, bytes] : frames) batched->enqueue_frame(peer, bytes);
  batched->flush();
  EXPECT_EQ(batched->pending_batch(), 0u);

  const auto prefixes = immediate->selected_prefixes();
  EXPECT_EQ(prefixes, batched->selected_prefixes());
  for (const auto& prefix : prefixes) {
    const auto* a = immediate->best(prefix);
    const auto* b = batched->best(prefix);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->ia, b->ia) << prefix.to_string();
    EXPECT_EQ(a->from_peer, b->from_peer);
  }
}

TEST(BatchedPipeline, BoundedBatchAutoFlushes) {
  core::DbgpConfig config;
  config.asn = 65000;
  config.next_hop = net::Ipv4Address(10, 0, 0, 1);
  config.max_batch = 4;
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId from = speaker.add_peer(65001);

  for (int i = 0; i < 4; ++i) {
    IntegratedAdvertisement ia;
    ia.destination = net::Prefix(net::Ipv4Address(10, 3, static_cast<std::uint8_t>(i), 0), 24);
    ia.path_vector.prepend_as(65001);
    ia.baseline.next_hop = net::Ipv4Address(1, 1, 1, 1);
    ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
    speaker.enqueue_frame(from, core::DbgpSpeaker::encode_announce(ia, {}));
  }
  // The fourth staged prefix hit max_batch and flushed inline.
  EXPECT_EQ(speaker.pending_batch(), 0u);
  EXPECT_EQ(speaker.selected_prefixes().size(), 4u);
}

TEST(EventQueueCoalescing, DuplicateKeysCollapseAndRearm) {
  simnet::EventQueue events;
  int runs = 0;
  events.schedule_coalesced(1, 0.0, [&] { ++runs; });
  events.schedule_coalesced(1, 0.0, [&] { ++runs; });  // coalesced away
  events.schedule_coalesced(2, 0.0, [&] { ++runs; });  // distinct key
  EXPECT_EQ(events.pending(), 2u);
  events.run();
  EXPECT_EQ(runs, 2);
  // The key is released when the event fires; a later schedule re-arms.
  events.schedule_coalesced(1, 0.0, [&] { ++runs; });
  events.run();
  EXPECT_EQ(runs, 3);
}

}  // namespace
}  // namespace dbgp::ia
