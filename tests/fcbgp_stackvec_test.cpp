// Property tests for the two newest protocol archetypes' descriptor codecs
// (FC-BGP forwarding commitments, StackVec gateway stacks) and for the
// robustness contracts around them:
//
//   * seeded random round-trips at the payload level (encode == decode) and
//     at the IA level, where the eager decode, the lazy decode, and the
//     splice re-encode (the CF-R1 pass-through fast path) must all agree —
//     the splice must be *byte-identical* to the original wire frame;
//   * truncated / overclaimed / garbage payloads throw util::DecodeError,
//     and a speaker fed a corrupt announce frame rejects it without
//     touching its adj-in (the eager staging path throws before any RIB
//     mutation);
//   * FC signature tampering — a flipped MAC, a re-signed wrong next hop, a
//     signer not on the path, a duplicate-signer shadow entry — drops
//     verified_coverage exactly one hop per tampered commitment, and
//     coverage-first selection prefers a fully attested path over a shorter
//     unverified one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/speaker.h"
#include "ia/codec.h"
#include "ia/descriptors.h"
#include "protocols/bgp_module.h"
#include "protocols/fcbgp.h"
#include "protocols/stackvec.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace dbgp {
namespace {

using protocols::AttestationAuthority;
using protocols::FcBgpModule;
using protocols::ForwardingCommitment;
using protocols::StackVecEntry;

std::vector<ForwardingCommitment> random_commitments(util::Rng& rng, std::size_t n) {
  std::vector<ForwardingCommitment> list;
  list.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ForwardingCommitment c;
    // Mix small and large AS numbers so single- and multi-byte varints are
    // both exercised.
    c.signer = rng.next_bool(0.5) ? rng.next_below(200) + 1
                                  : rng.next_u32() | 0x10000u;
    c.next_as = rng.next_bool(0.2) ? 0 : rng.next_u32();
    c.mac = rng.next_u64();
    list.push_back(c);
  }
  return list;
}

std::vector<StackVecEntry> random_stack(util::Rng& rng, std::size_t n) {
  std::vector<StackVecEntry> entries;
  entries.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    StackVecEntry e;
    e.gateway_as = rng.next_bool(0.5) ? rng.next_below(500) + 1 : rng.next_u32();
    e.endpoint = net::Ipv4Address(rng.next_u32());
    entries.push_back(e);
  }
  return entries;
}

// A random IA carrying both new descriptor kinds, an unknown-protocol
// descriptor (pass-through cargo), and occasionally a duplicated payload so
// the blob-table sharing path is part of what the splice must preserve.
ia::IntegratedAdvertisement random_ia(util::Rng& rng) {
  ia::IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse(
      "10." + std::to_string(rng.next_below(256)) + ".0.0/16");
  const std::size_t hops = 1 + rng.next_below(6);
  for (std::size_t i = 0; i < hops; ++i) {
    ia.path_vector.prepend_as(rng.next_below(60000) + 1);
  }
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(rng.next_u32());

  const auto fc_payload =
      protocols::encode_commitments(random_commitments(rng, rng.next_below(6)));
  ia.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments, fc_payload);
  const auto sv_payload =
      protocols::encode_stack_vector(random_stack(rng, rng.next_below(5)));
  ia.set_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector, sv_payload);
  if (rng.next_bool(0.5)) {
    ia.add_island_descriptor(ia::IslandId::assigned(rng.next_below(40) + 1),
                             ia::kProtoStackVec, ia::keys::kStackVecGateway,
                             protocols::encode_stack_vector(random_stack(rng, 1)));
  }
  // Unknown protocol the receiver has no module for; sometimes an exact
  // duplicate of the FC payload to hit the shared-blob case.
  ia.set_path_descriptor(77, 3,
                         rng.next_bool(0.3)
                             ? fc_payload
                             : std::vector<std::uint8_t>{0xca, 0xfe,
                                                         static_cast<std::uint8_t>(
                                                             rng.next_below(256))});
  return ia;
}

TEST(FcCodec, RandomRoundTrip) {
  util::Rng rng(0xfc01);
  for (int iter = 0; iter < 200; ++iter) {
    const auto list = random_commitments(rng, rng.next_below(16));
    const auto payload = protocols::encode_commitments(list);
    EXPECT_EQ(protocols::decode_commitments(payload), list) << "iter=" << iter;
  }
}

TEST(StackVecCodec, RandomRoundTrip) {
  util::Rng rng(0x51ac);
  for (int iter = 0; iter < 200; ++iter) {
    const auto entries = random_stack(rng, rng.next_below(16));
    const auto payload = protocols::encode_stack_vector(entries);
    EXPECT_EQ(protocols::decode_stack_vector(payload), entries) << "iter=" << iter;
  }
}

TEST(FcCodec, EveryTruncationRejected) {
  util::Rng rng(0xfc02);
  const auto payload = protocols::encode_commitments(random_commitments(rng, 5));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() +
                                                  static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(protocols::decode_commitments(truncated), util::DecodeError)
        << "cut=" << cut;
  }
}

TEST(StackVecCodec, EveryTruncationRejected) {
  util::Rng rng(0x51ad);
  const auto payload = protocols::encode_stack_vector(random_stack(rng, 5));
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() +
                                                  static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(protocols::decode_stack_vector(truncated), util::DecodeError)
        << "cut=" << cut;
  }
}

TEST(FcCodec, OverclaimedCountRejected) {
  // A count varint promising more entries than the payload can possibly
  // hold must fail the expect_items pre-check, not allocate or loop.
  util::ByteWriter w;
  w.put_varint(100000);
  w.put_varint(1);
  const auto payload = w.take();
  EXPECT_THROW(protocols::decode_commitments(payload), util::DecodeError);
  EXPECT_THROW(protocols::decode_stack_vector(payload), util::DecodeError);
}

TEST(FcCodec, MalformedPayloadIsUncoveredButRoutable) {
  // A garbage commitment list must degrade to zero coverage, never to an
  // import rejection: FC-BGP is a critical fix, and partial deployment must
  // not blackhole routes (header contract).
  const AttestationAuthority authority;
  FcBgpModule module({.asn = 999, .island = {}}, &authority);
  core::IaRoute route;
  route.ia.destination = *net::Prefix::parse("10.1.0.0/16");
  route.ia.path_vector.prepend_as(30);
  route.ia.path_vector.prepend_as(20);
  route.ia.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments,
                               {0xff, 0xff, 0xff});
  EXPECT_TRUE(module.import_filter(route));
  const auto [verified, hops] = module.verified_coverage(route);
  EXPECT_EQ(verified, 0u);
  EXPECT_EQ(hops, 2u);
}

TEST(StackVecCodec, MalformedVectorReadsEmpty) {
  ia::IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.2.0.0/16");
  ia.set_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector, {0x09, 0x01});
  EXPECT_TRUE(protocols::stack_vector_of(ia).empty());
  ia.remove_path_descriptors(ia::kProtoStackVec);
  EXPECT_TRUE(protocols::stack_vector_of(ia).empty());
}

TEST(FcStackIaCodec, EagerLazyAndSpliceAgree) {
  // The three ways an IA carrying the new descriptors crosses the codec —
  // eager materialization, lazy tail, and the pass-through splice — must be
  // observationally identical, and the splice must reproduce the original
  // frame byte for byte (that is the CF-R1 fast path the gulf ASes take).
  util::Rng rng(0x1a51ac);
  for (int iter = 0; iter < 64; ++iter) {
    const auto original = random_ia(rng);
    const auto bytes = ia::encode_ia(original);

    const auto lazy = ia::decode_ia(bytes);
    ASSERT_TRUE(lazy.has_opaque_tail()) << "iter=" << iter;
    ASSERT_FALSE(lazy.descriptors_materialized()) << "iter=" << iter;

    auto eager = ia::decode_ia(bytes);
    eager.materialize_descriptors();
    ASSERT_TRUE(eager.descriptors_materialized()) << "iter=" << iter;

    EXPECT_EQ(eager, original) << "iter=" << iter;
    EXPECT_EQ(lazy, original) << "iter=" << iter;
    EXPECT_EQ(lazy, eager) << "iter=" << iter;

    // Splice re-encode: both the untouched lazy copy and the materialized-
    // but-unedited eager copy still carry an exact tail.
    EXPECT_EQ(ia::encode_ia(lazy), bytes) << "iter=" << iter;
    EXPECT_EQ(ia::encode_ia(eager), bytes) << "iter=" << iter;

    // A descriptor edit dirties the tail; the full re-encode must still
    // round-trip to the same content.
    auto edited = ia::decode_ia(bytes);
    edited.mutable_path_descriptors();
    EXPECT_FALSE(edited.has_opaque_tail()) << "iter=" << iter;
    EXPECT_EQ(ia::decode_ia(ia::encode_ia(edited)), original) << "iter=" << iter;
  }
}

TEST(FcStackIaCodec, DescriptorAccessDoesNotForceFullMaterialization) {
  // stack_vector_of / verified_coverage read descriptors through the lazy
  // accessors; afterwards the IA is materialized but the tail stays exact,
  // so a later re-export still splices.
  util::Rng rng(0x1a51ad);
  const auto original = random_ia(rng);
  const auto bytes = ia::encode_ia(original);
  const auto decoded = ia::decode_ia(bytes);
  (void)protocols::stack_vector_of(decoded);
  EXPECT_TRUE(decoded.descriptors_materialized());
  EXPECT_TRUE(decoded.has_opaque_tail());
  EXPECT_EQ(ia::encode_ia(decoded), bytes);
}

// ---------------------------------------------------------------------------
// FC signature tampering.

struct FcFixture {
  AttestationAuthority authority;
  FcBgpModule module{{.asn = 999, .island = {}}, &authority};
  net::Prefix prefix = *net::Prefix::parse("10.9.0.0/16");

  // Route via path 10 -> 20 -> 30 (origin), fully committed: each hop signs
  // its true next hop toward the origin; the origin signs next hop 0.
  core::IaRoute route_with(const std::vector<ForwardingCommitment>& list) const {
    core::IaRoute route;
    route.ia.destination = prefix;
    route.ia.path_vector.prepend_as(30);
    route.ia.path_vector.prepend_as(20);
    route.ia.path_vector.prepend_as(10);
    route.ia.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments,
                                 protocols::encode_commitments(list));
    return route;
  }

  ForwardingCommitment signed_entry(bgp::AsNumber signer, bgp::AsNumber next) const {
    return {signer, next, protocols::fc_sign(authority, signer, next, prefix)};
  }

  std::vector<ForwardingCommitment> full_chain() const {
    return {signed_entry(10, 20), signed_entry(20, 30), signed_entry(30, 0)};
  }
};

TEST(FcVerify, FullChainCoversEveryHop) {
  const FcFixture fx;
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(fx.full_chain()));
  EXPECT_EQ(verified, 3u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, CommitmentOrderIsIrrelevant) {
  const FcFixture fx;
  auto list = fx.full_chain();
  std::swap(list[0], list[2]);
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(list));
  EXPECT_EQ(verified, 3u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, FlippedMacDropsExactlyThatHop) {
  const FcFixture fx;
  auto list = fx.full_chain();
  list[1].mac ^= 1;
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(list));
  EXPECT_EQ(verified, 2u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, ResignedWrongNextHopDetected) {
  // The attacker *can* produce a valid MAC for a false next hop (MACs are
  // per-signer, not per-path); verification catches the claim because the
  // committed next hop disagrees with the hop's actual path position.
  const FcFixture fx;
  auto list = fx.full_chain();
  list[0] = fx.signed_entry(10, 99);
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(list));
  EXPECT_EQ(verified, 2u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, SignerNotOnPathDoesNotCount) {
  const FcFixture fx;
  auto list = fx.full_chain();
  list[1] = fx.signed_entry(21, 30);  // valid commitment, wrong AS
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(list));
  EXPECT_EQ(verified, 2u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, DuplicateSignerShadowEntryDetected) {
  // One commitment per signer: a tampered entry inserted ahead of the
  // genuine one shadows it (first match wins), so the hop reads as
  // tampered rather than letting an attacker stack a bad claim in front of
  // a good one and have verification skip to the good one.
  const FcFixture fx;
  auto list = fx.full_chain();
  auto shadow = list[1];
  shadow.mac ^= 0xdead;
  list.insert(list.begin() + 1, shadow);
  const auto [verified, hops] = fx.module.verified_coverage(fx.route_with(list));
  EXPECT_EQ(verified, 2u);
  EXPECT_EQ(hops, 3u);
}

TEST(FcVerify, CoverageOutranksPathLength) {
  // Coverage-first selection: a fully attested 3-hop path beats a shorter
  // uncovered one — the property that anchors the dispute wheel.
  const FcFixture fx;
  auto covered = fx.route_with(fx.full_chain());
  covered.from_peer = 0;
  covered.sequence = 1;

  core::IaRoute bare;
  bare.ia.destination = fx.prefix;
  bare.ia.path_vector.prepend_as(40);
  bare.from_peer = 1;
  bare.sequence = 2;

  EXPECT_TRUE(fx.module.better(covered, bare));
  EXPECT_FALSE(fx.module.better(bare, covered));
  EXPECT_EQ(fx.module.explain_better(covered, bare), "fc-coverage");
}

// ---------------------------------------------------------------------------
// Corrupt frames must not touch the adj-in.

std::string state_fingerprint(const core::DbgpSpeaker& speaker) {
  const auto state = speaker.export_state();
  std::string out;
  auto append = [&out](const char* table,
                       const std::vector<core::DbgpSpeaker::RouteRecord>& records) {
    for (const auto& r : records) {
      out += table;
      out += ' ';
      out += r.prefix.to_string();
      out += " peer=" + std::to_string(r.from_peer);
      out += " as=" + std::to_string(r.neighbor_as);
      out += " seq=" + std::to_string(r.sequence);
      out += r.eligible ? " eligible" : " ineligible";
      out += " bytes=";
      for (const std::uint8_t b : r.bytes) {
        static const char* hex = "0123456789abcdef";
        out += hex[b >> 4];
        out += hex[b & 0xf];
      }
      out += '\n';
    }
  };
  append("adj_in", state.adj_in);
  append("selected", state.selected);
  append("adj_out", state.adj_out);
  return out;
}

TEST(SpeakerRobustness, CorruptFramesRejectedWithoutTouchingAdjIn) {
  const AttestationAuthority authority;
  core::DbgpConfig config;
  config.asn = 100;
  config.next_hop = net::Ipv4Address(100);
  config.active_protocol = ia::kProtoFcBgp;
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  speaker.add_module(std::make_unique<FcBgpModule>(
      FcBgpModule::Config{.asn = 100, .island = {}}, &authority));
  const bgp::PeerId from = speaker.add_peer(20);
  speaker.add_peer(300);

  // Seed the RIB with one good route carrying both descriptor kinds.
  ia::IntegratedAdvertisement good;
  good.destination = *net::Prefix::parse("10.5.0.0/16");
  good.path_vector.prepend_as(30);
  good.path_vector.prepend_as(20);
  good.baseline.as_path = good.path_vector.to_bgp_as_path();
  good.baseline.next_hop = net::Ipv4Address(20);
  good.set_path_descriptor(
      ia::kProtoFcBgp, ia::keys::kFcCommitments,
      protocols::encode_commitments(
          {{30, 0, protocols::fc_sign(authority, 30, 0, good.destination)}}));
  good.set_path_descriptor(ia::kProtoStackVec, ia::keys::kStackVector,
                           protocols::encode_stack_vector({{20, net::Ipv4Address(20)}}));
  const auto good_frame = core::DbgpSpeaker::encode_announce(good, {});
  ASSERT_FALSE(speaker.handle_frame(from, good_frame).empty());
  ASSERT_NE(speaker.best(good.destination), nullptr);
  const std::string before = state_fingerprint(speaker);
  const auto stats_before = speaker.stats().ias_received;

  // A different prefix, so a buggy partial stage would be visible as a new
  // adj-in row rather than an overwrite of the seeded one.
  ia::IntegratedAdvertisement other = good;
  other.destination = *net::Prefix::parse("10.6.0.0/16");
  const auto other_frame = core::DbgpSpeaker::encode_announce(other, {});

  std::vector<std::vector<std::uint8_t>> corrupt;
  auto truncated = other_frame;
  truncated.resize(truncated.size() - 3);
  corrupt.push_back(truncated);
  auto bad_version = other_frame;
  bad_version[1] = 99;  // byte 0 is the frame type; byte 1 the IA version
  corrupt.push_back(bad_version);
  auto trailing = other_frame;
  trailing.push_back(0x00);
  corrupt.push_back(trailing);
  corrupt.push_back({static_cast<std::uint8_t>(core::FrameType::kAnnounce), 0xff, 0x00});

  for (std::size_t i = 0; i < corrupt.size(); ++i) {
    EXPECT_THROW(speaker.handle_frame(from, corrupt[i]), util::DecodeError)
        << "frame " << i;
    EXPECT_THROW(speaker.enqueue_frame(from, corrupt[i]), util::DecodeError)
        << "frame " << i;
    EXPECT_EQ(speaker.pending_batch(), 0u) << "frame " << i;
  }
  EXPECT_TRUE(speaker.flush().empty());
  EXPECT_EQ(state_fingerprint(speaker), before);
  EXPECT_EQ(speaker.stats().ias_received, stats_before);
  EXPECT_EQ(speaker.best(other.destination), nullptr);

  // The intact frame still lands afterwards: rejection poisoned nothing.
  EXPECT_FALSE(speaker.handle_frame(from, other_frame).empty());
  EXPECT_NE(speaker.best(other.destination), nullptr);
}

}  // namespace
}  // namespace dbgp
