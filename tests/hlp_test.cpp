#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/hlp.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

const net::Prefix kPrefix = *net::Prefix::parse("172.20.0.0/16");

TEST(LinkStateDb, ShortestCostDijkstra) {
  LinkStateDb lsdb;
  lsdb.add_link(1, 2, 10);
  lsdb.add_link(2, 3, 10);
  lsdb.add_link(1, 3, 50);
  lsdb.add_link(3, 4, 5);
  EXPECT_EQ(lsdb.shortest_cost(1, 3), 20u);  // via 2, not the direct 50
  EXPECT_EQ(lsdb.shortest_cost(1, 4), 25u);
  EXPECT_EQ(lsdb.shortest_cost(1, 1), 0u);
  EXPECT_FALSE(lsdb.shortest_cost(1, 99).has_value());
  EXPECT_EQ(lsdb.link_count(), 4u);
}

TEST(LinkStateDb, ShortestPathNodes) {
  LinkStateDb lsdb;
  lsdb.add_link(1, 2, 10);
  lsdb.add_link(2, 3, 10);
  lsdb.add_link(1, 3, 50);
  EXPECT_EQ(lsdb.shortest_path(1, 3), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(lsdb.shortest_path(1, 42).empty());
  EXPECT_EQ(lsdb.shortest_path(2, 2), std::vector<std::uint32_t>{2});
}

TEST(LinkStateDb, LinkUpdateChangesRoutes) {
  LinkStateDb lsdb;
  lsdb.add_link(1, 2, 10);
  lsdb.add_link(2, 3, 10);
  lsdb.add_link(1, 3, 50);
  // The link-state event: 2-3 degrades; the direct link becomes best.
  lsdb.add_link(2, 3, 100);
  EXPECT_EQ(lsdb.shortest_cost(1, 3), 50u);
  ASSERT_TRUE(lsdb.remove_link(1, 3));
  EXPECT_EQ(lsdb.shortest_cost(1, 3), 110u);
  EXPECT_FALSE(lsdb.remove_link(1, 99));
}

TEST(Hlp, CostCodecRoundTrip) {
  EXPECT_EQ(decode_hlp_cost(encode_hlp_cost(0)), 0u);
  EXPECT_EQ(decode_hlp_cost(encode_hlp_cost(123456789)), 123456789u);
}

TEST(Hlp, ProtocolIdIsWellKnown) {
  EXPECT_EQ(hlp_protocol_id(), ia::kProtoHlp);
  EXPECT_EQ(ia::default_registry().name(ia::kProtoHlp), "hlp");
}

TEST(Hlp, TransitCostFromLsdb) {
  LinkStateDb lsdb;
  lsdb.add_link(10, 11, 7);
  lsdb.add_link(11, 12, 3);
  HlpModule module({ia::IslandId::assigned(1), 10, 12}, &lsdb);
  EXPECT_EQ(module.transit_cost(), 10u);
  // Partition: falls back to 1 so reachability survives.
  lsdb.remove_link(11, 12);
  EXPECT_EQ(module.transit_cost(), 1u);
}

TEST(Hlp, ComparatorPrefersLowerCost) {
  HlpModule module({ia::IslandId::assigned(1), 0, 0}, nullptr);
  core::IaRoute cheap, pricey;
  cheap.ia.set_path_descriptor(hlp_protocol_id(), hlp_keys::kHlpCost, encode_hlp_cost(5));
  cheap.ia.path_vector.prepend_island(ia::IslandId::assigned(7));
  cheap.ia.path_vector.prepend_island(ia::IslandId::assigned(8));
  pricey.ia.set_path_descriptor(hlp_protocol_id(), hlp_keys::kHlpCost, encode_hlp_cost(50));
  pricey.ia.path_vector.prepend_island(ia::IslandId::assigned(7));
  EXPECT_TRUE(module.better(cheap, pricey));
  EXPECT_FALSE(module.better(pricey, cheap));
}

// HLP across a gulf: two HLP islands (which MUST abstract — their internals
// are link-state) separated by a BGP gulf. The cumulative cost crosses the
// gulf; the receiving island selects by cost; loop detection works at
// island granularity for the abstracted entries.
TEST(HlpGulf, CostCrossesGulfWithIslandAbstraction) {
  simnet::DbgpNetwork net;
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);

  LinkStateDb lsdb_a;  // island A's internal topology
  lsdb_a.add_link(101, 102, 7);
  lsdb_a.add_link(102, 103, 5);

  auto add_hlp = [&](bgp::AsNumber asn, ia::IslandId island, const LinkStateDb* lsdb,
                     std::uint32_t in, std::uint32_t out,
                     std::vector<bgp::AsNumber> members) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = hlp_protocol_id();
    config.abstract_island = true;  // link-state internals: must abstract
    config.island_members = std::move(members);
    config.active_protocol = hlp_protocol_id();
    auto& speaker = net.add_as(config);
    speaker.add_module(
        std::make_unique<HlpModule>(HlpModule::Config{island, in, out}, lsdb));
    speaker.add_module(std::make_unique<BgpModule>());
  };

  add_hlp(1, island_a, &lsdb_a, 101, 103, {1, 2});  // origin member
  add_hlp(2, island_a, &lsdb_a, 101, 103, {1, 2});  // egress member
  core::DbgpConfig gulf;
  gulf.asn = 4;
  gulf.next_hop = net::Ipv4Address(4);
  net.add_as(gulf).add_module(std::make_unique<BgpModule>());
  LinkStateDb lsdb_b;
  add_hlp(9, island_b, &lsdb_b, 201, 201, {9});

  net.add_link(1, 2, /*same_island=*/true);
  net.add_link(2, 4);
  net.add_link(4, 9);
  net.originate(1, kPrefix);
  net.run_to_convergence();

  const auto* best = net.speaker(9).best(kPrefix);
  ASSERT_NE(best, nullptr);
  // Island A abstracted itself away: the path vector is [A, 4] at ingress.
  EXPECT_TRUE(best->ia.path_vector.contains_island(island_a));
  EXPECT_FALSE(best->ia.path_vector.contains_as(1));
  EXPECT_FALSE(best->ia.path_vector.contains_as(2));
  EXPECT_TRUE(best->ia.path_vector.contains_as(4));
  // The egress member added the LSDB transit cost 101->103 = 12.
  EXPECT_EQ(HlpModule::path_cost(*best), 12u);
  // Island-granularity loop detection: the IA cannot re-enter island A.
  EXPECT_TRUE(best->ia.path_vector.would_loop(99, island_a));
}

}  // namespace
}  // namespace dbgp::protocols
