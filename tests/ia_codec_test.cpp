#include <gtest/gtest.h>

#include "ia/codec.h"
#include "ia/compress.h"
#include "util/rng.h"

namespace dbgp::ia {
namespace {

IntegratedAdvertisement sample_ia() {
  // Approximates Figure 4: Wiser + BGPSec path descriptors, SCION / Wiser /
  // MIRO island descriptors, mixed path vector.
  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("128.6.0.0/32");
  ia.path_vector.prepend_as(3);
  ia.path_vector.prepend_island(IslandId::assigned(11));  // "K"
  ia.path_vector.prepend_as(4000);
  ia.path_vector.prepend_island(IslandId::assigned(7));   // "G"
  ia.path_vector.prepend_island(IslandId::assigned(1));   // "A"
  ia.add_membership({IslandId::assigned(1), {}, kProtoScion});
  ia.add_membership({IslandId::assigned(7), {}, kProtoMiro});
  ia.add_membership({IslandId::from_as(3), {3}, kProtoWiser});
  ia.baseline.origin = bgp::Origin::kEgp;
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(195, 2, 27, 0);
  ia.set_path_descriptor(kProtoWiser, keys::kWiserPathCost, {100});
  ia.set_path_descriptor(kProtoBgpSec, keys::kBgpSecAttestation, {9, 9, 9, 9, 9, 9});
  ia.add_island_descriptor(IslandId::assigned(1), kProtoScion, keys::kScionPaths,
                           {1, 2, 3, 4, 5});
  ia.add_island_descriptor(IslandId::assigned(7), kProtoMiro, keys::kMiroPortalAddr,
                           {173, 82, 2, 0});
  ia.add_island_descriptor(IslandId::from_as(3), kProtoWiser, keys::kWiserPortalAddr,
                           {163, 42, 5, 0});
  return ia;
}

TEST(IaCodec, RoundTrip) {
  const IntegratedAdvertisement ia = sample_ia();
  const auto bytes = encode_ia(ia);
  EXPECT_EQ(decode_ia(bytes), ia);
}

TEST(IaCodec, RoundTripEmpty) {
  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("0.0.0.0/0");
  EXPECT_EQ(decode_ia(encode_ia(ia)), ia);
}

TEST(IaCodec, RoundTripCompressed) {
  IntegratedAdvertisement ia = sample_ia();
  // Pad with repetitive data so compression engages.
  ia.set_path_descriptor(kProtoEqBgp, 7, std::vector<std::uint8_t>(2000, 0x55));
  CodecOptions options;
  options.compress = true;
  const auto compressed = encode_ia(ia, options);
  const auto plain = encode_ia(ia);
  EXPECT_LT(compressed.size(), plain.size());
  EXPECT_EQ(decode_ia(compressed), ia);
}

TEST(IaCodec, SharingDeduplicatesIdenticalPayloads) {
  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.0.0.0/8");
  const std::vector<std::uint8_t> shared(500, 0xab);
  // Five critical fixes carrying identical control information (the
  // Section 3.2 sharing case behind Table 3's "+ Sharing" row).
  for (ProtocolId p = 50; p < 55; ++p) ia.set_path_descriptor(p, 1, shared);

  const auto with_sharing = measure_ia(ia, {.compress = false, .share_blobs = true});
  const auto without = measure_ia(ia, {.compress = false, .share_blobs = false});
  EXPECT_EQ(with_sharing.shared_savings, 4 * 500u);
  EXPECT_EQ(without.shared_savings, 0u);
  EXPECT_LT(with_sharing.total + 4 * 490, without.total);  // ~2000 bytes saved
  // Both decode to the same IA.
  EXPECT_EQ(decode_ia(encode_ia(ia, {.compress = false, .share_blobs = true})), ia);
  EXPECT_EQ(decode_ia(encode_ia(ia, {.compress = false, .share_blobs = false})), ia);
}

TEST(IaCodec, TruncatedInputThrows) {
  const auto bytes = encode_ia(sample_ia());
  for (std::size_t cut : {std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_ia(truncated), util::DecodeError) << "cut=" << cut;
  }
}

TEST(IaCodec, BadVersionThrows) {
  auto bytes = encode_ia(sample_ia());
  bytes[0] = 99;
  EXPECT_THROW(decode_ia(bytes), util::DecodeError);
}

TEST(IaCodec, TrailingGarbageThrows) {
  auto bytes = encode_ia(sample_ia());
  bytes.push_back(0x00);
  EXPECT_THROW(decode_ia(bytes), util::DecodeError);
}

TEST(IaCodec, FuzzDecodeNeverCrashes) {
  // Random mutations must either decode or throw DecodeError — never UB.
  util::Rng rng(31337);
  const auto base = encode_ia(sample_ia());
  for (int iter = 0; iter < 300; ++iter) {
    auto bytes = base;
    const auto flips = rng.next_below(8) + 1;
    for (std::uint32_t i = 0; i < flips; ++i) {
      bytes[rng.next_below(static_cast<std::uint32_t>(bytes.size()))] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    try {
      (void)decode_ia(bytes);
    } catch (const util::DecodeError&) {
      // expected for most mutations
    }
  }
}

class IaRandomRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IaRandomRoundTrip, RoundTrips) {
  util::Rng rng(GetParam());
  IntegratedAdvertisement ia;
  ia.destination = net::Prefix(net::Ipv4Address(rng.next_u32()),
                               static_cast<std::uint8_t>(rng.next_below(33)));
  const auto pv_len = rng.next_below(6);
  for (std::uint32_t i = 0; i < pv_len; ++i) {
    switch (rng.next_below(3)) {
      case 0: ia.path_vector.prepend_as(rng.next_u32() % 65000 + 1); break;
      case 1: ia.path_vector.prepend_island(IslandId::assigned(rng.next_u32() % 1000 + 1)); break;
      default: ia.path_vector.prepend_as_set({rng.next_u32() % 100 + 1, rng.next_u32() % 100 + 101}); break;
    }
  }
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(rng.next_u32());
  const auto pds = rng.next_below(5);
  for (std::uint32_t i = 0; i < pds; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(100));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
    ia.set_path_descriptor(rng.next_u32() % 20 + 1, static_cast<std::uint16_t>(i), payload);
  }
  const auto ids = rng.next_below(4);
  for (std::uint32_t i = 0; i < ids; ++i) {
    std::vector<std::uint8_t> payload(rng.next_below(60));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u32());
    ia.add_island_descriptor(IslandId::assigned(i + 1), rng.next_u32() % 20 + 1,
                             static_cast<std::uint16_t>(i), payload);
  }
  CodecOptions options;
  options.compress = rng.next_bool(0.5);
  EXPECT_EQ(decode_ia(encode_ia(ia, options)), ia);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IaRandomRoundTrip, ::testing::Range<std::uint64_t>(0, 25));

// -- Compressor -------------------------------------------------------------------

TEST(Compress, RoundTripRepetitive) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) {
    for (std::uint8_t b : {0x01, 0x02, 0x03, 0x04, 0x05}) data.push_back(b);
  }
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), data.size() / 2);
  EXPECT_EQ(lz_decompress(compressed, data.size()), data);
}

TEST(Compress, RoundTripRandomData) {
  util::Rng rng(55);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
  EXPECT_EQ(lz_decompress(lz_compress(data), data.size()), data);
}

TEST(Compress, EmptyInput) {
  EXPECT_TRUE(lz_compress({}).empty());
  EXPECT_TRUE(lz_decompress({}, 0).empty());
}

TEST(Compress, OverlappingMatches) {
  // "aaaa..." forces matches that overlap their own output.
  std::vector<std::uint8_t> data(1000, 'a');
  const auto compressed = lz_compress(data);
  EXPECT_LT(compressed.size(), 50u);
  EXPECT_EQ(lz_decompress(compressed, data.size()), data);
}

TEST(Compress, WrongDeclaredSizeThrows) {
  std::vector<std::uint8_t> data(100, 'x');
  const auto compressed = lz_compress(data);
  EXPECT_THROW(lz_decompress(compressed, 99), util::DecodeError);
  EXPECT_THROW(lz_decompress(compressed, 101), util::DecodeError);
}

}  // namespace
}  // namespace dbgp::ia
