#include <gtest/gtest.h>

#include "ia/integrated_advertisement.h"

namespace dbgp::ia {
namespace {

TEST(IslandId, SingletonUsesAsNumber) {
  const IslandId id = IslandId::from_as(65001);
  EXPECT_TRUE(id.valid());
  EXPECT_TRUE(id.is_singleton_as());
  EXPECT_EQ(id.as_number(), 65001u);
  EXPECT_EQ(id.to_string(), "AS65001");
}

TEST(IslandId, AssignedIsDistinctFromAsSpace) {
  EXPECT_NE(IslandId::assigned(65001).raw(), IslandId::from_as(65001).raw());
  EXPECT_FALSE(IslandId::assigned(65001).is_singleton_as());
}

TEST(IslandId, DeriveIsOrderIndependent) {
  const bgp::AsNumber a[] = {10, 20, 30};
  const bgp::AsNumber b[] = {30, 10, 20};
  EXPECT_EQ(IslandId::derive(a), IslandId::derive(b));
  const bgp::AsNumber c[] = {10, 20, 31};
  EXPECT_NE(IslandId::derive(a), IslandId::derive(c));
}

TEST(ProtocolRegistry, BuiltinsAndDynamicRegistration) {
  ProtocolRegistry registry;
  EXPECT_EQ(registry.find("bgp"), kProtoBgp);
  EXPECT_EQ(registry.find("wiser"), kProtoWiser);
  EXPECT_EQ(registry.name(kProtoScion), "scion");
  const ProtocolId mine = registry.register_protocol("my-proto");
  EXPECT_GE(mine, kFirstDynamicProtocolId);
  EXPECT_EQ(registry.register_protocol("my-proto"), mine);  // idempotent
  EXPECT_EQ(registry.name(999), "proto-999");
}

TEST(PathVector, PrependAndContains) {
  IaPathVector pv;
  pv.prepend_as(3);
  pv.prepend_island(IslandId::assigned(7));
  pv.prepend_as(1);
  EXPECT_EQ(pv.hop_count(), 3u);
  EXPECT_TRUE(pv.contains_as(1));
  EXPECT_TRUE(pv.contains_as(3));
  EXPECT_FALSE(pv.contains_as(2));
  EXPECT_TRUE(pv.contains_island(IslandId::assigned(7)));
  EXPECT_FALSE(pv.contains_island(IslandId::assigned(8)));
}

TEST(PathVector, SingletonIslandEntryMentionsItsAs) {
  IaPathVector pv;
  pv.prepend_island(IslandId::from_as(42));
  EXPECT_TRUE(pv.contains_as(42));  // loop check must see through it
}

TEST(PathVector, AsSetMentionsMembers) {
  IaPathVector pv;
  pv.prepend_as_set({5, 6, 7});
  EXPECT_TRUE(pv.contains_as(6));
  EXPECT_FALSE(pv.contains_as(8));
  EXPECT_EQ(pv.hop_count(), 1u);  // set counts once
}

TEST(PathVector, UnifiedLoopDetection) {
  IaPathVector pv;
  pv.prepend_as(3);
  pv.prepend_island(IslandId::assigned(7));
  EXPECT_TRUE(pv.would_loop(3));
  EXPECT_TRUE(pv.would_loop(99, IslandId::assigned(7)));  // island-granularity
  EXPECT_FALSE(pv.would_loop(99, IslandId::assigned(8)));
  EXPECT_FALSE(pv.would_loop(99));
}

TEST(PathVector, AbstractLeadingMembers) {
  IaPathVector pv;
  pv.prepend_as(100);  // beyond the island
  pv.prepend_as(12);
  pv.prepend_as(11);
  pv.prepend_as(10);
  const bgp::AsNumber members[] = {10, 11, 12};
  const IslandId island = IslandId::assigned(5);
  EXPECT_EQ(pv.abstract_leading_members(island, members), 3u);
  ASSERT_EQ(pv.elements().size(), 2u);
  EXPECT_EQ(pv.elements()[0].kind, PathElement::Kind::kIsland);
  EXPECT_EQ(pv.elements()[0].island_id, island);
  EXPECT_EQ(pv.elements()[1].asn, 100u);
  // Path-diversity loss: re-entering the island now loops at island level.
  EXPECT_TRUE(pv.would_loop(999, island));
}

TEST(PathVector, AbstractStopsAtNonMember) {
  IaPathVector pv;
  pv.prepend_as(11);
  pv.prepend_as(99);  // non-member leading entry
  const bgp::AsNumber members[] = {10, 11};
  EXPECT_EQ(pv.abstract_leading_members(IslandId::assigned(5), members), 0u);
  EXPECT_EQ(pv.elements().size(), 2u);
}

TEST(PathVector, ToBgpAsPath) {
  IaPathVector pv;
  pv.prepend_as(30);
  pv.prepend_as_set({20, 21});
  pv.prepend_island(IslandId::from_as(10));
  pv.prepend_island(IslandId::assigned(9));
  const bgp::AsPath path = pv.to_bgp_as_path();
  // assigned island -> opaque AS 64512; singleton island -> its ASN.
  EXPECT_EQ(path.to_string(), "64512 10 {20,21} 30");
}

TEST(PathVector, ToStringFormat) {
  IaPathVector pv;
  pv.prepend_as(3);
  pv.prepend_as_set({4, 5});
  pv.prepend_island(IslandId::assigned(1));
  EXPECT_EQ(pv.to_string(), "island:1 {4,5} 3");
}

TEST(IntegratedAdvertisement, PathDescriptorUpsert) {
  IntegratedAdvertisement ia;
  ia.set_path_descriptor(kProtoWiser, 1, {1, 2});
  ia.set_path_descriptor(kProtoWiser, 1, {3});
  ASSERT_EQ(ia.path_descriptors().size(), 1u);
  EXPECT_EQ(ia.path_descriptors()[0].value, (std::vector<std::uint8_t>{3}));
  EXPECT_NE(ia.find_path_descriptor(kProtoWiser, 1), nullptr);
  EXPECT_EQ(ia.find_path_descriptor(kProtoWiser, 2), nullptr);
  ia.remove_path_descriptors(kProtoWiser);
  EXPECT_TRUE(ia.path_descriptors().empty());
}

TEST(IntegratedAdvertisement, IslandDescriptorLookup) {
  IntegratedAdvertisement ia;
  const IslandId a = IslandId::assigned(1), b = IslandId::assigned(2);
  ia.add_island_descriptor(a, kProtoScion, 1, {1});
  ia.add_island_descriptor(b, kProtoScion, 1, {2});
  ia.add_island_descriptor(a, kProtoMiro, 1, {3});
  EXPECT_EQ(ia.island_descriptors_for(kProtoScion).size(), 2u);
  EXPECT_NE(ia.find_island_descriptor(a, kProtoMiro, 1), nullptr);
  ia.remove_island_descriptors(a, kProtoScion);
  EXPECT_EQ(ia.island_descriptors_for(kProtoScion).size(), 1u);
  EXPECT_NE(ia.find_island_descriptor(a, kProtoMiro, 1), nullptr);  // untouched
}

TEST(IntegratedAdvertisement, MembershipUpsert) {
  IntegratedAdvertisement ia;
  ia.add_membership({IslandId::assigned(1), {10, 11}, kProtoWiser});
  ia.add_membership({IslandId::assigned(1), {10, 11, 12}, kProtoWiser});
  ASSERT_EQ(ia.island_ids.size(), 1u);
  EXPECT_EQ(ia.island_ids[0].members.size(), 3u);
  EXPECT_NE(ia.find_membership(IslandId::assigned(1)), nullptr);
  EXPECT_EQ(ia.find_membership(IslandId::assigned(2)), nullptr);
}

TEST(IntegratedAdvertisement, ProtocolsOnPath) {
  IntegratedAdvertisement ia;
  ia.set_path_descriptor(kProtoWiser, 1, {1});
  ia.add_island_descriptor(IslandId::assigned(1), kProtoScion, 1, {1});
  ia.add_membership({IslandId::assigned(2), {}, kProtoPathlets});
  const auto protocols = ia.protocols_on_path();
  EXPECT_TRUE(protocols.count(kProtoBgp));  // baseline always present (G-R4)
  EXPECT_TRUE(protocols.count(kProtoWiser));
  EXPECT_TRUE(protocols.count(kProtoScion));
  EXPECT_TRUE(protocols.count(kProtoPathlets));
  EXPECT_EQ(protocols.size(), 4u);
}

TEST(IntegratedAdvertisement, DumpMentionsKeyFields) {
  IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("128.6.0.0/32");
  ia.path_vector.prepend_as(3);
  ia.set_path_descriptor(kProtoWiser, 1, {100});
  const std::string dump = ia.dump();
  EXPECT_NE(dump.find("128.6.0.0/32"), std::string::npos);
  EXPECT_NE(dump.find("wiser"), std::string::npos);
}

}  // namespace
}  // namespace dbgp::ia
