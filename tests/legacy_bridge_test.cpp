// The D-BGP transition phase (Section 3.5): interop with legacy BGP-4
// speakers via optional transitive attribute 240.
#include <gtest/gtest.h>

#include "bgp/speaker.h"
#include "core/legacy_bridge.h"

namespace dbgp::core {
namespace {

ia::IntegratedAdvertisement rich_ia() {
  ia::IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("131.4.0.0/24");
  ia.path_vector.prepend_as(21);
  ia.path_vector.prepend_island(ia::IslandId::assigned(0xF0));
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  ia.baseline.next_hop = net::Ipv4Address(10, 0, 0, 1);
  ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost, {75});
  ia.add_island_descriptor(ia::IslandId::assigned(0xF0), ia::kProtoScion,
                           ia::keys::kScionPaths, {1, 2, 3});
  ia.add_membership({ia::IslandId::assigned(0xF0), {}, ia::kProtoScion});
  return ia;
}

TEST(LegacyBridge, RoundTripThroughUpdate) {
  LegacyBridge out_bridge, in_bridge;
  const auto ia = rich_ia();
  const auto update = out_bridge.ia_to_update(ia);
  EXPECT_EQ(out_bridge.stats().packed, 1u);
  // The update is a legal RFC 4271 message.
  const auto bytes = bgp::encode_message(bgp::Message{update});
  const auto decoded = std::get<bgp::UpdateMessage>(bgp::decode_message(bytes));

  const auto recovered = in_bridge.update_to_ia(decoded);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(in_bridge.stats().recovered, 1u);
  EXPECT_EQ(recovered[0].destination, ia.destination);
  EXPECT_EQ(recovered[0].path_vector, ia.path_vector);
  EXPECT_NE(recovered[0].find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost),
            nullptr);
  EXPECT_NE(recovered[0].find_island_descriptor(ia::IslandId::assigned(0xF0),
                                                ia::kProtoScion, ia::keys::kScionPaths),
            nullptr);
}

TEST(LegacyBridge, OversizeExtrasAreDroppedNotFatal) {
  LegacyBridge bridge;
  auto ia = rich_ia();
  ia.set_path_descriptor(77, 1, std::vector<std::uint8_t>(8000, 0x7f));  // > 4 KB limit
  const auto update = bridge.ia_to_update(ia);
  EXPECT_EQ(bridge.stats().dropped_oversize, 1u);
  // Still encodable, still announces the prefix, just without attr 240.
  EXPECT_NO_THROW(bgp::encode_message(bgp::Message{update}));
  ASSERT_TRUE(update.attributes.has_value());
  EXPECT_TRUE(update.attributes->unknown.empty());
  LegacyBridge in_bridge;
  const auto recovered = in_bridge.update_to_ia(update);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(in_bridge.stats().synthesized, 1u);  // baseline-only
  EXPECT_EQ(recovered[0].find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost),
            nullptr);
}

TEST(LegacyBridge, PlainUpdateSynthesizesBaselineIa) {
  LegacyBridge bridge;
  bgp::UpdateMessage update;
  bgp::PathAttributes attrs;
  attrs.as_path = bgp::AsPath({3, 2, 1});
  attrs.as_path.prepend_set({10, 11});
  attrs.next_hop = net::Ipv4Address(9, 9, 9, 9);
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("10.0.0.0/8"));
  const auto recovered = bridge.update_to_ia(update);
  ASSERT_EQ(recovered.size(), 1u);
  // AS_SET becomes an AS_SET path-vector element; loop check sees members.
  EXPECT_TRUE(recovered[0].path_vector.contains_as(11));
  EXPECT_TRUE(recovered[0].path_vector.contains_as(2));
  EXPECT_EQ(recovered[0].path_vector.hop_count(), 4u);
}

TEST(LegacyBridge, MalformedTransitAttrFallsBackToBaseline) {
  LegacyBridge bridge;
  bgp::UpdateMessage update;
  bgp::PathAttributes attrs;
  attrs.as_path = bgp::AsPath({1});
  attrs.next_hop = net::Ipv4Address(1, 1, 1, 1);
  attrs.unknown.push_back({bgp::kAttrFlagOptional | bgp::kAttrFlagTransitive,
                           kDbgpTransitAttr, {0xde, 0xad}});
  update.attributes = attrs;
  update.nlri.push_back(*net::Prefix::parse("10.0.0.0/8"));
  const auto recovered = bridge.update_to_ia(update);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(bridge.stats().malformed, 1u);
  EXPECT_EQ(bridge.stats().synthesized, 1u);
  EXPECT_TRUE(recovered[0].path_descriptors().empty());
}

// End-to-end through REAL legacy speakers: a D-BGP island's IA crosses two
// unmodified BgpSpeakers and reaches another D-BGP island with its control
// information intact — this is how D-BGP itself deploys incrementally.
TEST(LegacyBridge, SurvivesRealLegacySpeakers) {
  // D-BGP AS 1 -> legacy AS 2 -> legacy AS 3 -> D-BGP AS 4.
  auto make_speaker = [](bgp::AsNumber asn) {
    bgp::BgpSpeaker::Config config;
    config.asn = asn;
    config.router_id = net::Ipv4Address(asn);
    config.next_hop = net::Ipv4Address(asn);
    config.hold_time = 0;
    return bgp::BgpSpeaker(config);
  };
  bgp::BgpSpeaker legacy2 = make_speaker(2);
  bgp::BgpSpeaker legacy3 = make_speaker(3);
  // Wire 2<->3 plus edge peers 1 and 4 (we play those by hand).
  const bgp::PeerId p2_from_1 = legacy2.add_peer(1);
  const bgp::PeerId p2_to_3 = legacy2.add_peer(3);
  const bgp::PeerId p3_from_2 = legacy3.add_peer(2);
  const bgp::PeerId p3_to_4 = legacy3.add_peer(4);

  auto establish = [](bgp::BgpSpeaker& speaker, bgp::PeerId peer, bgp::AsNumber remote) {
    speaker.start_peer(peer, 0.0);
    speaker.handle_message(peer,
                           bgp::OpenMessage{4, remote, 0, net::Ipv4Address(remote), {}}, 0.0);
    speaker.handle_message(peer, bgp::KeepAliveMessage{}, 0.0);
  };
  establish(legacy2, p2_from_1, 1);
  establish(legacy2, p2_to_3, 3);
  establish(legacy3, p3_from_2, 2);
  establish(legacy3, p3_to_4, 4);

  // AS 1 (D-BGP) packs its IA into an update and sends it to legacy AS 2.
  LegacyBridge sender;
  auto ia = rich_ia();  // origin path vector [F0-island, 21]; pretend AS 1 is the egress
  ia.path_vector.prepend_as(1);
  ia.baseline.as_path = ia.path_vector.to_bgp_as_path();
  const auto update_from_1 = sender.ia_to_update(ia);

  auto out2 = legacy2.handle_message(p2_from_1, bgp::Message{update_from_1}, 0.0);
  // Find the update AS 2 forwards to AS 3 and deliver it.
  std::vector<bgp::Outgoing> out3;
  for (const auto& msg : out2) {
    if (msg.peer == p2_to_3) {
      auto more = legacy3.handle_bytes(p3_from_2, msg.bytes, 0.0);
      out3.insert(out3.end(), more.begin(), more.end());
    }
  }
  // AS 3 forwards toward AS 4; the D-BGP side unpacks.
  LegacyBridge receiver;
  std::vector<ia::IntegratedAdvertisement> arrived;
  for (const auto& msg : out3) {
    if (msg.peer != p3_to_4) continue;
    const auto m = bgp::decode_message(msg.bytes);
    if (!std::holds_alternative<bgp::UpdateMessage>(m)) continue;
    auto more = receiver.update_to_ia(std::get<bgp::UpdateMessage>(m));
    arrived.insert(arrived.end(), more.begin(), more.end());
  }
  ASSERT_EQ(arrived.size(), 1u);
  const auto& got = arrived[0];
  // Control information survived two unmodified legacy speakers.
  EXPECT_NE(got.find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost), nullptr);
  EXPECT_NE(got.find_island_descriptor(ia::IslandId::assigned(0xF0), ia::kProtoScion,
                                       ia::keys::kScionPaths),
            nullptr);
  // The legacy hops appear in the recovered path vector (prepended 3, 2).
  EXPECT_TRUE(got.path_vector.contains_as(3));
  EXPECT_TRUE(got.path_vector.contains_as(2));
  EXPECT_TRUE(got.path_vector.contains_as(1));
  EXPECT_EQ(receiver.stats().recovered, 1u);
}

}  // namespace
}  // namespace dbgp::core
