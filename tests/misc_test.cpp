// Coverage for the smaller core pieces: logging, the lookup service, the IA
// factory's pass-through contract in isolation, and the Wiser two-way cost
// exchange running across a gulf end-to-end (Section 3.4's full loop).
#include <gtest/gtest.h>

#include "core/ia_factory.h"
#include "core/lookup_service.h"
#include "protocols/bgp_module.h"
#include "protocols/wiser.h"
#include "simnet/network.h"
#include "util/logging.h"

namespace dbgp {
namespace {

// -- Logging ---------------------------------------------------------------------

TEST(Logging, LevelFiltersAndSinkCaptures) {
  std::vector<std::string> lines;
  util::set_log_sink([&lines](util::LogLevel, std::string_view line) {
    lines.emplace_back(line);
  });
  const auto old_level = util::log_level();
  util::set_log_level(util::LogLevel::kInfo);
  DBGP_LOG(util::LogLevel::kDebug, "test") << "hidden";
  DBGP_LOG(util::LogLevel::kInfo, "test") << "visible " << 42;
  util::set_log_level(old_level);
  util::set_log_sink(nullptr);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "test: visible 42");
}

TEST(Logging, LevelNames) {
  EXPECT_EQ(util::to_string(util::LogLevel::kTrace), "trace");
  EXPECT_EQ(util::to_string(util::LogLevel::kError), "error");
  EXPECT_EQ(util::to_string(util::LogLevel::kOff), "off");
}

// -- LookupService ------------------------------------------------------------------

TEST(LookupService, PutGetEraseAndCounters) {
  core::LookupService lookup(net::Ipv4Address(10, 0, 0, 7));
  EXPECT_EQ(lookup.address(), net::Ipv4Address(10, 0, 0, 7));
  EXPECT_FALSE(lookup.get("missing").has_value());
  lookup.put("a/b", {1, 2, 3});
  lookup.put("a/c", {4});
  lookup.put("z", {5});
  auto got = lookup.get("a/b");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(lookup.size(), 3u);
  EXPECT_EQ(lookup.put_count(), 3u);
  EXPECT_EQ(lookup.get_count(), 2u);  // the miss counted too
  EXPECT_TRUE(lookup.erase("a/b"));
  EXPECT_FALSE(lookup.erase("a/b"));
  EXPECT_EQ(lookup.size(), 2u);
}

TEST(LookupService, KeysWithPrefix) {
  core::LookupService lookup;
  lookup.put("miro/1/x", {});
  lookup.put("miro/2/y", {});
  lookup.put("wiser/1", {});
  const auto keys = lookup.keys_with_prefix("miro/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "miro/1/x");
  EXPECT_TRUE(lookup.keys_with_prefix("nothing/").empty());
}

TEST(LookupService, IaKeyIsCanonical) {
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  EXPECT_EQ(core::LookupService::ia_key(1, 2, prefix), "ia/1/2/10.0.0.0/8");
  EXPECT_NE(core::LookupService::ia_key(1, 2, prefix),
            core::LookupService::ia_key(2, 1, prefix));
}

// -- IaFactory ------------------------------------------------------------------------

TEST(IaFactory, PassThroughAndBaselineUpdates) {
  core::IaFactory factory({42, ia::IslandId::from_as(42), net::Ipv4Address(42), true});
  core::IaRoute best;
  best.ia.destination = *net::Prefix::parse("10.0.0.0/8");
  best.ia.path_vector.prepend_as(7);
  best.ia.baseline.local_pref = 999;  // must be scrubbed on eBGP export
  best.ia.baseline.med = 5;
  best.ia.set_path_descriptor(77, 1, {0xaa});
  best.ia.add_island_descriptor(ia::IslandId::assigned(3), 78, 2, {0xbb});

  core::ExportContext ctx;
  ctx.own_as = 42;
  const auto out = factory.create_from_best(best, nullptr, ctx);
  // Pass-through of everything we do not understand.
  EXPECT_NE(out.find_path_descriptor(77, 1), nullptr);
  EXPECT_NE(out.find_island_descriptor(ia::IslandId::assigned(3), 78, 2), nullptr);
  // Baseline updates: prepend, next-hop-self, scrub LOCAL_PREF and MED.
  EXPECT_TRUE(out.path_vector.contains_as(42));
  EXPECT_EQ(out.path_vector.hop_count(), 2u);
  EXPECT_EQ(out.baseline.next_hop, net::Ipv4Address(42));
  EXPECT_FALSE(out.baseline.local_pref.has_value());
  EXPECT_FALSE(out.baseline.med.has_value());
  // The BGP-visible AS_PATH mirrors the path vector.
  EXPECT_TRUE(out.baseline.as_path.contains(42));
  EXPECT_TRUE(out.baseline.as_path.contains(7));
}

TEST(IaFactory, NoPrependWhenDisabled) {
  core::IaFactory factory({42, {}, net::Ipv4Address(42), /*prepend_own_as=*/false});
  core::IaRoute best;
  best.ia.destination = *net::Prefix::parse("10.0.0.0/8");
  best.ia.path_vector.prepend_as(7);
  const auto out = factory.create_from_best(best, nullptr, {});
  EXPECT_FALSE(out.path_vector.contains_as(42));
  EXPECT_EQ(out.path_vector.hop_count(), 1u);
}

TEST(IaFactory, OriginHasSingleHop) {
  core::IaFactory factory({42, {}, net::Ipv4Address(42), true});
  const auto out = factory.create_origin(*net::Prefix::parse("10.0.0.0/8"), nullptr, {});
  EXPECT_EQ(out.path_vector.hop_count(), 1u);
  EXPECT_TRUE(out.path_vector.contains_as(42));
  EXPECT_EQ(out.baseline.origin, bgp::Origin::kIgp);
}

// -- Wiser two-way cost exchange across a gulf ------------------------------------------

TEST(WiserExchange, TwoWayScalingAcrossGulfEndToEnd) {
  // Island A (cost units 10x larger) advertises across a gulf to island B.
  // After the out-of-band exchange, B re-evaluates and sees A's costs scaled
  // into its own units — the complete Section 3.4 loop.
  core::LookupService lookup;
  protocols::WiserCostExchange exchange(&lookup);
  simnet::DbgpNetwork net(&lookup);
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  const auto prefix = *net::Prefix::parse("128.6.0.0/16");

  protocols::WiserModule* module_a = nullptr;
  protocols::WiserModule* module_b = nullptr;
  auto add_wiser = [&](bgp::AsNumber asn, ia::IslandId island, std::uint64_t cost,
                       protocols::WiserModule** out_module) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    auto& speaker = net.add_as(config);
    auto module = std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{island, cost, net::Ipv4Address(asn)}, &exchange);
    *out_module = module.get();
    speaker.add_module(std::move(module));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  };
  add_wiser(1, island_a, 500, &module_a);  // island A: big cost units
  core::DbgpConfig gulf;
  gulf.asn = 4;
  gulf.next_hop = net::Ipv4Address(4);
  net.add_as(gulf).add_module(std::make_unique<protocols::BgpModule>());
  add_wiser(9, island_b, 5, &module_b);

  net.add_link(1, 4);
  net.add_link(4, 9);
  net.originate(1, prefix);
  net.run_to_convergence();

  // Before any exchange B guessed scale 1.0: it stored A's raw cost.
  const auto* before = net.speaker(9).best(prefix);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(protocols::WiserModule::path_cost(*before), 500u);

  // The periodic exchange: A publishes what it advertised; B already
  // reported what it received at import time. A claims its mean advertised
  // cost is 500 but in B's units the comparable cost would be 50: publish a
  // deliberately-skewed report to exercise scaling.
  exchange.report_advertised(island_a, island_b, /*cost_sum=*/50, /*count=*/1);
  auto out = net.speaker(9).reevaluate_all();
  const auto* after = net.speaker(9).best(prefix);
  ASSERT_NE(after, nullptr);
  // scale = advertised_mean / received_mean = 50 / 500 = 0.1 -> cost 50.
  EXPECT_EQ(protocols::WiserModule::path_cost(*after), 50u);
  (void)module_a;
  (void)module_b;
  (void)out;
}

}  // namespace
}  // namespace dbgp
