#include <gtest/gtest.h>

#include "net/ipv4.h"
#include "net/prefix_trie.h"
#include "util/rng.h"

namespace dbgp::net {
namespace {

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::parse("128.6.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value(), 0x80060001u);
  EXPECT_EQ(a->to_string(), "128.6.0.1");
}

class Ipv4ParseInvalid : public ::testing::TestWithParam<const char*> {};

TEST_P(Ipv4ParseInvalid, Rejected) {
  EXPECT_FALSE(Ipv4Address::parse(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, Ipv4ParseInvalid,
                         ::testing::Values("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "1..2.3",
                                           "a.b.c.d", "1.2.3.4 ", "-1.2.3.4"));

TEST(Ipv4Address, RoundTripAllOctetBoundaries) {
  for (std::uint32_t v : {0u, 0xffffffffu, 0x01020304u, 0xc0a80101u}) {
    EXPECT_EQ(Ipv4Address::parse(Ipv4Address(v).to_string())->value(), v);
  }
}

TEST(Prefix, Canonicalizes) {
  const Prefix p(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.to_string(), "10.1.0.0/16");
}

TEST(Prefix, ParseAndFormat) {
  auto p = Prefix::parse("192.168.1.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24);
  EXPECT_EQ(p->to_string(), "192.168.1.0/24");
  EXPECT_FALSE(Prefix::parse("192.168.1.0/33"));
  EXPECT_FALSE(Prefix::parse("192.168.1.0"));
  EXPECT_FALSE(Prefix::parse("foo/8"));
}

TEST(Prefix, ContainsAndCovers) {
  const Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(Ipv4Address(10, 255, 0, 1)));
  EXPECT_FALSE(p.contains(Ipv4Address(11, 0, 0, 1)));
  EXPECT_TRUE(p.covers(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(p.covers(p));
  EXPECT_FALSE(p.covers(*Prefix::parse("0.0.0.0/0")));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix any = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(any.contains(Ipv4Address(1, 2, 3, 4)));
  EXPECT_TRUE(any.covers(*Prefix::parse("255.0.0.0/8")));
}

TEST(PrefixTrie, InsertFindErase) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.insert(*Prefix::parse("10.0.0.0/8"), 1));
  EXPECT_FALSE(trie.insert(*Prefix::parse("10.0.0.0/8"), 2));  // replace
  EXPECT_EQ(*trie.find(*Prefix::parse("10.0.0.0/8")), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_TRUE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_FALSE(trie.erase(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(trie.empty());
}

TEST(PrefixTrie, LongestPrefixMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 0);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);

  Prefix matched;
  EXPECT_EQ(*trie.longest_match(Ipv4Address(10, 1, 2, 3), &matched), 24);
  EXPECT_EQ(matched.to_string(), "10.1.2.0/24");
  EXPECT_EQ(*trie.longest_match(Ipv4Address(10, 1, 9, 9)), 16);
  EXPECT_EQ(*trie.longest_match(Ipv4Address(10, 9, 9, 9)), 8);
  EXPECT_EQ(*trie.longest_match(Ipv4Address(11, 0, 0, 1)), 0);
}

TEST(PrefixTrie, NoDefaultMeansNoMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  EXPECT_EQ(trie.longest_match(Ipv4Address(11, 0, 0, 1)), nullptr);
}

TEST(PrefixTrie, HostRoutes) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.1/32"), 1);
  trie.insert(*Prefix::parse("10.0.0.2/32"), 2);
  EXPECT_EQ(*trie.longest_match(Ipv4Address(10, 0, 0, 1)), 1);
  EXPECT_EQ(*trie.longest_match(Ipv4Address(10, 0, 0, 2)), 2);
  EXPECT_EQ(trie.longest_match(Ipv4Address(10, 0, 0, 3)), nullptr);
}

TEST(PrefixTrie, ForEachVisitsAllInOrder) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.1.0.0/16"), 1);
  trie.insert(*Prefix::parse("10.0.0.0/8"), 2);
  trie.insert(*Prefix::parse("192.168.0.0/16"), 3);
  std::vector<std::string> visited;
  trie.for_each([&](const Prefix& p, const int&) { visited.push_back(p.to_string()); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], "10.0.0.0/8");
  EXPECT_EQ(visited[1], "10.1.0.0/16");
  EXPECT_EQ(visited[2], "192.168.0.0/16");
}

TEST(PrefixTrie, RandomizedAgainstLinearScan) {
  // Property: LPM result equals brute-force longest covering prefix.
  util::Rng rng(77);
  PrefixTrie<std::size_t> trie;
  std::vector<Prefix> prefixes;
  for (int i = 0; i < 200; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.next_below(25) + 8);
    const Prefix p(Ipv4Address(rng.next_u32()), len);
    if (trie.insert(p, prefixes.size())) prefixes.push_back(p);
  }
  for (int i = 0; i < 500; ++i) {
    const Ipv4Address addr(rng.next_u32());
    const std::size_t* got = trie.longest_match(addr);
    const Prefix* expected = nullptr;
    for (const auto& p : prefixes) {
      if (p.contains(addr) && (expected == nullptr || p.length() > expected->length())) {
        expected = &p;
      }
    }
    if (expected == nullptr) {
      EXPECT_EQ(got, nullptr);
    } else {
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(prefixes[*got].length(), expected->length());
      EXPECT_TRUE(prefixes[*got].contains(addr));
    }
  }
}

}  // namespace
}  // namespace dbgp::net
