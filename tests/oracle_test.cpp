// Observability-plane suite: the convergence oracle's classifications plus
// the sampler / event-log / Prometheus-exposition pieces it rides on
// (DESIGN.md §15). Built as the separate `dbgp_oracle_tests` binary carrying
// the `trace` ctest label (the oracle is a consumer of the causal-trace DAG)
// so CI selects it with `ctest -L trace` and the dbgp_asan_check target
// re-runs it under AddressSanitizer.
//
// The three classification fixtures are the ones the oracle exists for:
//   * fault-free figure8          -> every prefix converged;
//   * half-wiser ring under chaos -> oscillating, with span-cycle evidence
//     (PR 6's known diverger: cost-driven flipping that a drained queue
//     never reveals);
//   * crash without repair        -> diverged (reachable once, silently
//     lost, no withdraw-origin to justify it).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocols/bgp_module.h"
#include "scenario/parser.h"
#include "scenario/runner.h"
#include "server/control.h"
#include "server/daemon.h"
#include "simnet/network.h"
#include "telemetry/causal.h"
#include "telemetry/event_log.h"
#include "telemetry/metrics.h"
#include "telemetry/oracle.h"
#include "telemetry/peer_metrics.h"
#include "telemetry/prom_export.h"
#include "telemetry/sampler.h"
#include "util/json.h"

namespace dbgp::telemetry {
namespace {

std::string scenario_path(const char* name) {
  return std::string(DBGP_SCENARIO_DIR "/") + name;
}

core::DbgpConfig bgp_as(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;
}

void must(server::ControlApi& api, const std::string& line) {
  const auto result = api.execute(line);
  ASSERT_TRUE(result.ok) << "'" << line << "' failed: " << result.text;
}

// -- Classification: converged ------------------------------------------------

TEST(Oracle, FaultFreeFigure8Converges) {
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets.dbgp")));
  const auto result = runner.run();
  ASSERT_TRUE(result.all_passed() && result.converged);

  const ConvergenceOracle oracle;
  const auto report = oracle.classify(runner.causal());
  EXPECT_EQ(report.verdict, Verdict::kConverged);
  EXPECT_EQ(report.diverged, 0u);
  EXPECT_EQ(report.oscillating, 0u);
  EXPECT_GT(report.converged, 0u);
  for (const auto& p : report.prefixes) {
    EXPECT_EQ(p.verdict, Verdict::kConverged) << "AS" << p.as << " " << p.prefix;
    EXPECT_TRUE(p.evidence.empty());
  }
}

TEST(Oracle, ObservedScenarioSamplesAndConverges) {
  // The `observe` stanza of the observed figure8 variant must attach the
  // sampler + event log through the scenario runner, and the oracle verdict
  // must match the plain variant's.
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets_observed.dbgp")));
  const auto result = runner.run();
  ASSERT_TRUE(result.all_passed() && result.converged);

  ASSERT_NE(runner.sampler(), nullptr);
  ASSERT_NE(runner.event_log(), nullptr);
  EXPECT_GE(runner.sampler()->sample_count(), 1u);
  EXPECT_FALSE(runner.sampler()->series_names().empty());

  const auto report = ConvergenceOracle().classify(runner.causal());
  EXPECT_EQ(report.verdict, Verdict::kConverged);
}

// -- Classification: oscillating ----------------------------------------------

TEST(Oracle, HalfWiserRingUnderChaosOscillates) {
  // PR 6's known diverger (see bench_daemon.cpp): a 16-node BGP ring whose
  // lower half adopts wiser while a seeded chaos schedule runs. The mixed
  // cost/path decision processes keep stealing the best route from each
  // other after chaos repairs, so the post-chaos trajectory cycles instead
  // of settling. Bounded `step`s, never `run` — the run would trip the
  // event cap precisely because it never converges.
  constexpr std::size_t kNodes = 16;
  server::RouteServer server;  // causal tracing on by default
  server::ControlApi api(server);
  for (std::size_t asn = 1; asn <= kNodes; ++asn) {
    must(api, "add-peer " + std::to_string(asn) + " " +
                  std::to_string(asn % kNodes + 1));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    must(api, "originate " + std::to_string(i * (kNodes / 4) + 1) + " 10." +
                  std::to_string(i + 1) + ".0.0/16");
  }
  must(api, "run");
  must(api, "set-chaos full seed=7 horizon=2.0");
  for (std::size_t asn = 1; asn <= kNodes / 2; ++asn) {
    must(api, "upgrade-protocol " + std::to_string(asn) + " wiser");
    must(api, "step 0.1");
  }
  // Past the chaos horizon and well into the undisturbed regime: the oracle
  // ignores fault-window churn, so the cycling it flags below is all
  // post-repair behaviour.
  for (int i = 0; i < 10; ++i) must(api, "step 0.5");

  const auto report = server.classify_convergence();
  EXPECT_EQ(report.verdict, Verdict::kOscillating);
  EXPECT_GT(report.oscillating, 0u);
  bool found_evidence = false;
  const auto spans = server.causal().spans();
  for (const auto& p : report.prefixes) {
    if (p.verdict != Verdict::kOscillating) continue;
    EXPECT_GE(p.post_chaos_flips, 4u) << "AS" << p.as << " " << p.prefix;
    EXPECT_FALSE(p.reason.empty());
    // Note: an *empty* cycle_signature is legal — it is the recurring
    // "unreachable" RIB state. The evidence cycle, though, must always be
    // there, and its decision spans must resolve inside the recorded trace.
    ASSERT_FALSE(p.evidence.empty()) << "AS" << p.as << " " << p.prefix;
    found_evidence = true;
    for (const SpanId id : p.evidence) {
      EXPECT_GE(id, 1u);
      EXPECT_LE(id, spans.size());
    }
  }
  EXPECT_TRUE(found_evidence) << "oscillating verdict without a span cycle";

  // The health verb surfaces the same verdict.
  const auto health = api.execute("health");
  ASSERT_TRUE(health.ok);
  EXPECT_NE(health.text.find("verdict=oscillating"), std::string::npos) << health.text;
}

// -- Classification: diverged -------------------------------------------------

TEST(Oracle, CrashWithoutRepairDiverges) {
  CausalTracer tracer;
  simnet::DbgpNetwork::Options options;
  options.causal = &tracer;
  simnet::DbgpNetwork net(nullptr, options);
  for (bgp::AsNumber asn = 1; asn <= 3; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(1, 2);
  net.add_link(2, 3);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);

  // The origin crashes and never comes back: downstream ASes lose the
  // prefix with no withdraw-origin in the trace to justify it.
  net.crash(1);
  net.run_until(net.events().now() + 5.0);
  ASSERT_EQ(net.speaker(3).best(prefix), nullptr);

  const auto report = ConvergenceOracle().classify(tracer);
  EXPECT_EQ(report.verdict, Verdict::kDiverged);
  EXPECT_GT(report.diverged, 0u);
  EXPECT_EQ(report.oscillating, 0u);
  bool downstream_diverged = false;
  for (const auto& p : report.prefixes) {
    if (p.as == 3 && p.verdict == Verdict::kDiverged) {
      downstream_diverged = true;
      EXPECT_TRUE(p.final_path.empty());
      EXPECT_FALSE(p.reason.empty());
    }
  }
  EXPECT_TRUE(downstream_diverged);
}

// -- Classification matrix: dispute wheels ------------------------------------

// `dispute-wheel` scenario text for one matrix cell. The chaos stanza is the
// "flaky" column: link flaps + light loss inside a bounded window, with the
// post-repair trajectory being what the oracle classifies.
std::string wheel_text(std::size_t spokes, double fc_adoption, bool flaky) {
  char head[128];
  std::snprintf(head, sizeof head, "dispute-wheel spokes=%zu fc-adoption=%.2f seed=1\n",
                spokes, fc_adoption);
  std::string text = head;
  if (flaky) {
    text +=
        "chaos seed=5 start=0.3 horizon=1.0 flap-fraction=0.4 "
        "mean-up=0.4 mean-down=0.1 loss=0.03\n";
  }
  return text;
}

TEST(Oracle, DisputeWheelMatrixLandsExpectedVerdicts) {
  // Rings of 3/5/7 spokes x {fault-free, flaky} x {0%, 50%, 100%} FC-BGP
  // adoption. The policy ring has no stable assignment at 0% adoption
  // (odd-ring dispute wheel), so those runs are bounded drains that the
  // oracle must flag as oscillating with a resolvable span cycle; any
  // positive adoption anchors enough spokes to their attested direct path
  // that the wheel breaks and every AS converges — including under chaos,
  // where the verdict covers the post-repair trajectory.
  for (const std::size_t spokes : {std::size_t{3}, std::size_t{5}, std::size_t{7}}) {
    for (const bool flaky : {false, true}) {
      for (const double adoption : {0.0, 0.5, 1.0}) {
        SCOPED_TRACE("spokes=" + std::to_string(spokes) +
                     " adoption=" + std::to_string(adoption) +
                     (flaky ? " flaky" : " fault-free"));
        const bool expect_converged = adoption > 0.0;

        scenario::Runner runner;
        runner.enable_causal_tracing();
        runner.build(scenario::parse_scenario(wheel_text(spokes, adoption, flaky)));
        // An oscillating ring would hit the default 10M-event cap; keep the
        // drain short — the trajectory sample is what the oracle reads.
        if (!expect_converged) runner.set_max_events(20000);
        const auto result = runner.run();
        EXPECT_EQ(result.converged, expect_converged);

        const auto report = ConvergenceOracle().classify(runner.causal());
        const auto spans = runner.causal().spans();
        if (expect_converged) {
          EXPECT_EQ(report.verdict, Verdict::kConverged);
          EXPECT_EQ(report.diverged, 0u);
          EXPECT_EQ(report.oscillating, 0u);
          // Hub plus every spoke settles on the one originated prefix.
          EXPECT_EQ(report.converged, spokes + 1);
        } else {
          EXPECT_EQ(report.verdict, Verdict::kOscillating);
          EXPECT_GT(report.oscillating, 0u);
          bool found_evidence = false;
          for (const auto& p : report.prefixes) {
            if (p.verdict != Verdict::kOscillating) continue;
            found_evidence = true;
            ASSERT_FALSE(p.evidence.empty()) << "AS" << p.as << " " << p.prefix;
            for (const SpanId id : p.evidence) {
              EXPECT_GE(id, 1u);
              EXPECT_LE(id, spans.size());
            }
          }
          EXPECT_TRUE(found_evidence) << "oscillating verdict without a span cycle";
        }
      }
    }
  }
}

TEST(Oracle, DisputeWheelHubCrashDiverges) {
  // Third verdict class on the same generator: a fully upgraded wheel
  // converges, then the hub — the only origin — crashes and never returns.
  // Spokes lose the prefix with no withdraw-origin to justify it.
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::parse_scenario(wheel_text(5, 1.0, false)));
  ASSERT_TRUE(runner.run().converged);

  auto& net = runner.network();
  net.crash(100);  // the default hub AS
  net.run_until(net.events().now() + 5.0);
  const auto prefix = *net::Prefix::parse("10.99.0.0/16");
  ASSERT_EQ(net.speaker(1).best(prefix), nullptr);

  const auto report = ConvergenceOracle().classify(runner.causal());
  EXPECT_EQ(report.verdict, Verdict::kDiverged);
  EXPECT_GT(report.diverged, 0u);
  bool spoke_diverged = false;
  for (const auto& p : report.prefixes) {
    if (p.as != 100 && p.verdict == Verdict::kDiverged) {
      spoke_diverged = true;
      EXPECT_TRUE(p.final_path.empty());
      EXPECT_FALSE(p.reason.empty());
    }
  }
  EXPECT_TRUE(spoke_diverged);
}

TEST(Oracle, DeliberateWithdrawalIsConvergedNotDiverged) {
  CausalTracer tracer;
  simnet::DbgpNetwork::Options options;
  options.causal = &tracer;
  simnet::DbgpNetwork net(nullptr, options);
  for (bgp::AsNumber asn = 1; asn <= 3; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(1, 2);
  net.add_link(2, 3);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  net.withdraw(1, prefix);
  net.run_to_convergence();
  ASSERT_EQ(net.speaker(3).best(prefix), nullptr);

  const auto report = ConvergenceOracle().classify(tracer);
  EXPECT_EQ(report.verdict, Verdict::kConverged);
  EXPECT_EQ(report.diverged, 0u);
}

TEST(Oracle, ReportSerializesToJson) {
  scenario::Runner runner;
  runner.enable_causal_tracing();
  runner.build(scenario::load_scenario(scenario_path("figure8_pathlets.dbgp")));
  ASSERT_TRUE(runner.run().converged);
  const auto report = ConvergenceOracle().classify(runner.causal());
  const auto json = to_json(report);
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.find("verdict")->as_string(), "converged");
  EXPECT_TRUE(json.find("prefixes")->is_array());
  // Round-trips through the parser (what dbgp_run --oracle writes).
  const auto reparsed = util::json::Value::parse(json.dump());
  EXPECT_EQ(reparsed.find("verdict")->as_string(), "converged");
}

// -- Sampler ------------------------------------------------------------------

TEST(Sampler, EnforcesIntervalAndForce) {
  MetricsRegistry::global().reset();
  auto& counter = MetricsRegistry::global().counter("oracle_test.ticks");
  TimeSeriesSampler sampler({.interval = 0.5, .capacity = 8});
  counter.inc();
  EXPECT_TRUE(sampler.sample(0.0));    // first call always samples
  EXPECT_FALSE(sampler.sample(0.1));   // inside the interval
  EXPECT_FALSE(sampler.sample(0.49));
  EXPECT_TRUE(sampler.sample(0.5));
  EXPECT_TRUE(sampler.sample(0.6, /*force=*/true));
  EXPECT_EQ(sampler.sample_count(), 3u);

  const auto points = sampler.series("oracle_test.ticks");
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points.front().time, 0.0);
  EXPECT_DOUBLE_EQ(points.front().value, 1.0);
}

TEST(Sampler, RingBufferTrimsAndDeltasDeriveRates) {
  MetricsRegistry::global().reset();
  auto& counter = MetricsRegistry::global().counter("oracle_test.bytes");
  TimeSeriesSampler sampler({.interval = 1.0, .capacity = 4});
  for (int i = 0; i < 10; ++i) {
    counter.inc(10);  // +10 per second
    sampler.sample(static_cast<double>(i));
  }
  const auto points = sampler.series("oracle_test.bytes");
  ASSERT_EQ(points.size(), 4u);  // capacity bound, newest retained
  EXPECT_DOUBLE_EQ(points.back().time, 9.0);

  const auto deltas = sampler.deltas("oracle_test.bytes");
  ASSERT_EQ(deltas.size(), 3u);
  for (const auto& d : deltas) EXPECT_DOUBLE_EQ(d.value, 10.0);
  const auto rates = sampler.rates("oracle_test.bytes");
  ASSERT_EQ(rates.size(), 3u);
  for (const auto& r : rates) EXPECT_DOUBLE_EQ(r.value, 10.0);
}

TEST(Sampler, ToJsonShapeMatchesExposition) {
  MetricsRegistry::global().reset();
  MetricsRegistry::global().counter("oracle_test.a").inc(7);
  TimeSeriesSampler sampler({.interval = 0.5, .capacity = 8});
  sampler.sample(0.0);
  sampler.sample(1.0);
  const auto json = sampler.to_json();
  ASSERT_TRUE(json.is_object());
  EXPECT_DOUBLE_EQ(json.find("interval")->as_double(), 0.5);
  EXPECT_DOUBLE_EQ(json.find("samples")->as_double(), 2.0);
  const auto* series = json.find("series");
  ASSERT_NE(series, nullptr);
  const auto* points = series->find("oracle_test.a");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(points->as_array()[0].as_array()[1].as_double(), 7.0);
}

// -- Event log ----------------------------------------------------------------

TEST(EventLogTest, RecordsAndSerializesJsonl) {
  EventLog log;
  log.record(0.5, "session_up", 1, 2, "initial open");
  log.record(1.5, "chaos", 3, 0, "crash", 42);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 0u);

  const std::string jsonl = log.to_jsonl();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    const auto end = jsonl.find('\n', start);
    lines.push_back(jsonl.substr(start, end - start));
    if (end == std::string::npos) break;
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  const auto first = util::json::Value::parse(lines[0]);
  EXPECT_DOUBLE_EQ(first.find("time")->as_double(), 0.5);
  EXPECT_EQ(first.find("kind")->as_string(), "session_up");
  const auto second = util::json::Value::parse(lines[1]);
  EXPECT_EQ(second.find("kind")->as_string(), "chaos");
  EXPECT_DOUBLE_EQ(second.find("span")->as_double(), 42.0);
}

TEST(EventLogTest, BoundedDropsNewestAndCounts) {
  EventLog log(/*limit=*/3);
  for (int i = 0; i < 5; ++i) {
    log.record(static_cast<double>(i), "chaos", 1, 0, "tick");
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  const auto events = log.events();
  // Append-only journal: the oldest entries survive, overflow is dropped.
  EXPECT_DOUBLE_EQ(events.front().time, 0.0);
  EXPECT_DOUBLE_EQ(events.back().time, 2.0);
}

// -- Prometheus exposition ----------------------------------------------------

TEST(PromExport, SnapshotRendersValidTextWithLabels) {
  MetricsRegistry::global().reset();
  auto& reg = MetricsRegistry::global();
  reg.counter("oracle_test.updates").inc(3);
  reg.gauge("oracle_test.depth").set(2);
  reg.histogram("oracle_test.latency", {0.001, 0.01, 0.1}).record(0.005);
  const auto peer = PeerMetrics::create("dbgp.peer", 1, 2);
  peer.updates_in->inc(9);

  const std::string text = to_prometheus(reg.snapshot());
  std::string error;
  EXPECT_TRUE(validate_prometheus_text(text, &error)) << error;
  EXPECT_NE(text.find("dbgp_peer_updates_in{as=\"1\",peer=\"2\"} 9"), std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE oracle_test_latency histogram"), std::string::npos);
}

TEST(PromExport, SplitsLabeledNames) {
  const auto plain = split_prom_name("dbgp.speaker.frames");
  EXPECT_EQ(plain.base, "dbgp_speaker_frames");
  EXPECT_TRUE(plain.labels.empty());
  const auto labeled = split_prom_name("bgp.peer.updates_in|as=1,peer=2");
  EXPECT_EQ(labeled.base, "bgp_peer_updates_in");
  EXPECT_EQ(labeled.labels, "{as=\"1\",peer=\"2\"}");
}

TEST(PromExport, ValidatorRejectsMalformedText) {
  std::string error;
  EXPECT_FALSE(validate_prometheus_text("orphan_sample 1\n", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(validate_prometheus_text("# TYPE x counter\nx not_a_number\n", &error));
}

// -- Per-peer counters through a live network ---------------------------------

TEST(PeerMetricsTest, SessionsAccumulateLabeledCounters) {
  MetricsRegistry::global().reset();
  simnet::DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 3; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(1, 2);
  net.add_link(2, 3);
  net.originate(1, *net::Prefix::parse("10.0.0.0/8"));
  net.run_to_convergence();

  const auto snapshot = MetricsRegistry::global().snapshot();
  const auto* in = snapshot.find_counter("dbgp.peer.updates_in|as=2,peer=1");
  ASSERT_NE(in, nullptr);
  EXPECT_GT(in->value, 0u);
  const auto* out = snapshot.find_counter("dbgp.peer.updates_out|as=1,peer=2");
  ASSERT_NE(out, nullptr);
  EXPECT_GT(out->value, 0u);
}

}  // namespace
}  // namespace dbgp::telemetry
