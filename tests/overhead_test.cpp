#include <gtest/gtest.h>

#include "ia/codec.h"
#include "overhead/model.h"

namespace dbgp::overhead {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kKiB = 1024.0;

const AnalysisRow& row(const std::vector<AnalysisRow>& rows, const char* name) {
  for (const auto& r : rows) {
    if (r.name == name) return r;
  }
  ADD_FAILURE() << "missing row " << name;
  static AnalysisRow empty;
  return empty;
}

// Table 3's published numbers, reproduced by the model (tolerances cover
// the paper's rounding).
TEST(OverheadModel, BasicRowMatchesTable3) {
  const auto rows = analyze(Parameters{});
  const auto& basic = row(rows, "Basic");
  EXPECT_NEAR(basic.ia_size_cf_bytes.min, 40 * kKiB, 1 * kKiB);         // 40 KB
  EXPECT_NEAR(basic.ia_size_cf_bytes.max, 25 * 1024 * kKiB, 1024 * kKiB);  // 25 MB
  EXPECT_NEAR(basic.ia_size_cr_bytes.min, 1 * kKiB, 0.1 * kKiB);        // 1 KB
  EXPECT_NEAR(basic.ia_size_cr_bytes.max, 9.8 * 1024 * kKiB, 512 * kKiB);  // 9.8 MB
  EXPECT_NEAR(basic.total_bytes.min / kGiB, 24.0, 2.0);                 // 24 GB
  EXPECT_NEAR(basic.total_bytes.max / kGiB, 36000.0, 1000.0);           // 36,000 GB
}

TEST(OverheadModel, PathLengthRowMatchesTable3) {
  const auto rows = analyze(Parameters{});
  const auto& r = row(rows, "+ Avg path lengths");
  EXPECT_NEAR(r.ia_size_cf_bytes.min, 12 * kKiB, 1 * kKiB);             // 12 KB
  EXPECT_NEAR(r.ia_size_cf_bytes.max, 1.3 * 1024 * kKiB, 64 * kKiB);    // 1.3 MB
  EXPECT_NEAR(r.ia_size_cr_bytes.min, 0.3 * kKiB, 0.05 * kKiB);         // 0.3 KB
  EXPECT_NEAR(r.ia_size_cr_bytes.max, 50 * kKiB, 2 * kKiB);             // 50 KB
  EXPECT_NEAR(r.total_bytes.min / kGiB, 7.0, 1.0);                      // 7 GB
  EXPECT_NEAR(r.total_bytes.max / kGiB, 1300.0, 50.0);                  // 1,300 GB
}

TEST(OverheadModel, SharingRowMatchesTable3) {
  const auto rows = analyze(Parameters{});
  const auto& r = row(rows, "+ Sharing");
  EXPECT_NEAR(r.ia_size_cf_bytes.min, 4.8 * kKiB, 0.2 * kKiB);          // 4.8 KB
  EXPECT_NEAR(r.ia_size_cf_bytes.max, 0.56 * 1024 * kKiB, 16 * kKiB);   // 0.56 MB
  EXPECT_NEAR(r.total_bytes.min / kGiB, 3.0, 0.3);                      // 3 GB
  EXPECT_NEAR(r.total_bytes.max / kGiB, 610.0, 20.0);                   // 610 GB
}

TEST(OverheadModel, SingleProtocolRowMatchesTable3) {
  const auto rows = analyze(Parameters{});
  const auto& r = row(rows, "Single protocol");
  EXPECT_NEAR(r.ia_size_cf_bytes.min, 4 * kKiB, 0.01 * kKiB);
  EXPECT_NEAR(r.ia_size_cf_bytes.max, 256 * kKiB, 0.01 * kKiB);
  EXPECT_DOUBLE_EQ(r.ia_size_cr_bytes.max, 0.0);
  EXPECT_DOUBLE_EQ(r.advertisements.min, 600'000);
  EXPECT_DOUBLE_EQ(r.advertisements.max, 1'000'000);
  EXPECT_NEAR(r.total_bytes.min / kGiB, 2.3, 0.1);                      // 2.3 GB
  EXPECT_NEAR(r.total_bytes.max / kGiB, 240.0, 5.0);                    // 240 GB
}

TEST(OverheadModel, HeadlineFactorIs1_3To2_5) {
  const auto factor = overhead_factor(Parameters{});
  EXPECT_NEAR(factor.min, 1.3, 0.05);
  EXPECT_NEAR(factor.max, 2.5, 0.05);
}

TEST(OverheadModel, EachRefinementShrinksMaxOverhead) {
  const auto rows = analyze(Parameters{});
  EXPECT_GT(row(rows, "Basic").total_bytes.max,
            row(rows, "+ Avg path lengths").total_bytes.max);
  EXPECT_GT(row(rows, "+ Avg path lengths").total_bytes.max,
            row(rows, "+ Sharing").total_bytes.max);
}

TEST(OverheadModel, FormatRowIsHumanReadable) {
  const auto rows = analyze(Parameters{});
  const std::string text = format_row(rows[0]);
  EXPECT_NE(text.find("Basic"), std::string::npos);
  EXPECT_NE(text.find("total:"), std::string::npos);
}

// Empirical cross-check: the codec's blob sharing realizes the +Sharing
// mechanism — N critical fixes sharing (1 - CFu) of their control info cost
// far less than N full copies.
TEST(OverheadEmpirical, CodecSharingMatchesModelDirection) {
  const std::size_t control_info = 4096;
  const double unique_fraction = 0.1;
  const int fixes_on_path = 5;

  ia::IntegratedAdvertisement ia;
  ia.destination = *net::Prefix::parse("10.0.0.0/8");
  const std::vector<std::uint8_t> shared(
      static_cast<std::size_t>(control_info * (1.0 - unique_fraction)), 0x5a);
  for (int f = 0; f < fixes_on_path; ++f) {
    // Shared part: identical across fixes; unique part: per-fix bytes.
    ia.set_path_descriptor(100 + f, 1, shared);
    std::vector<std::uint8_t> unique(
        static_cast<std::size_t>(control_info * unique_fraction),
        static_cast<std::uint8_t>(f));
    ia.set_path_descriptor(100 + f, 2, unique);
  }
  const auto with_sharing = ia::measure_ia(ia, {.compress = false, .share_blobs = true});
  const auto without = ia::measure_ia(ia, {.compress = false, .share_blobs = false});

  // Model: with sharing ~ (N*CFu + (1-CFu)) * CI; without ~ N * CI.
  const double model_ratio =
      (fixes_on_path * unique_fraction + (1.0 - unique_fraction)) /
      static_cast<double>(fixes_on_path);
  const double measured_ratio =
      static_cast<double>(with_sharing.total) / static_cast<double>(without.total);
  EXPECT_NEAR(measured_ratio, model_ratio, 0.05);
  EXPECT_EQ(with_sharing.shared_savings,
            (fixes_on_path - 1) * shared.size());
}

}  // namespace
}  // namespace dbgp::overhead
