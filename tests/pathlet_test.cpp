#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/pathlet.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

const net::Prefix kDest = *net::Prefix::parse("131.1.4.0/24");

Pathlet make_pathlet(std::uint32_t fid, std::vector<std::uint32_t> vias,
                     std::optional<net::Prefix> delivers = std::nullopt) {
  Pathlet p;
  p.fid = fid;
  p.vias = std::move(vias);
  p.delivers = delivers;
  return p;
}

TEST(PathletCodec, ListRoundTrip) {
  const std::vector<Pathlet> pathlets = {
      make_pathlet(1, {101, 102}),
      make_pathlet(9, {104}, kDest),
  };
  EXPECT_EQ(decode_pathlets(encode_pathlets(pathlets)), pathlets);
}

TEST(PathletCodec, SingleAdRoundTrip) {
  const Pathlet p = make_pathlet(5, {102, 104}, kDest);
  EXPECT_EQ(decode_pathlet_ad(encode_pathlet_ad(p)), p);
}

TEST(PathletStore, ComposeJoinsAtSharedVnode) {
  PathletStore store;
  store.add_local(make_pathlet(1, {101, 102}));
  store.add_local(make_pathlet(2, {102, 103}, kDest));
  const auto joined = store.compose(1, 2, 50);
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(joined->vias, (std::vector<std::uint32_t>{101, 102, 103}));
  EXPECT_EQ(joined->delivers, kDest);
  EXPECT_NE(store.find(50), nullptr);
}

TEST(PathletStore, ComposeRejectsNonAdjacent) {
  PathletStore store;
  store.add_local(make_pathlet(1, {101, 102}));
  store.add_local(make_pathlet(2, {103, 104}));
  EXPECT_FALSE(store.compose(1, 2, 50).has_value());
  EXPECT_FALSE(store.compose(1, 99, 50).has_value());  // missing fid
}

TEST(PathletStore, ComposeRejectsTerminatedHead) {
  PathletStore store;
  store.add_local(make_pathlet(1, {101, 102}, kDest));  // already delivers
  store.add_local(make_pathlet(2, {102, 103}));
  EXPECT_FALSE(store.compose(1, 2, 50).has_value());
}

TEST(PathletStore, LocalsExcludeLearned) {
  PathletStore store;
  store.add_local(make_pathlet(1, {101}));
  store.add_learned(make_pathlet(2, {201}));
  EXPECT_EQ(store.all().size(), 2u);
  ASSERT_EQ(store.locals().size(), 1u);
  EXPECT_EQ(store.locals()[0].fid, 1u);
  // A learned pathlet must never overwrite a local one.
  store.add_learned(make_pathlet(1, {999}));
  EXPECT_EQ(store.find(1)->vias, std::vector<std::uint32_t>{101});
}

TEST(PathletStore, DeliveringTo) {
  PathletStore store;
  store.add_local(make_pathlet(1, {101}, *net::Prefix::parse("131.1.0.0/16")));
  store.add_local(make_pathlet(2, {102}));
  const auto delivering = store.delivering_to(kDest);  // /24 inside the /16
  ASSERT_EQ(delivering.size(), 1u);
  EXPECT_EQ(delivering[0].fid, 1u);
}

TEST(PathletTranslation, IngressEgressRoundTrip) {
  // Egress folds within-island single-pathlet ads into one IA descriptor;
  // ingress explodes it back — the Section 6.1 translation-module pair.
  const auto island = ia::IslandId::assigned(0xA);
  std::vector<core::WithinIslandAd> ads;
  for (std::uint32_t fid : {1u, 2u, 3u}) {
    core::WithinIslandAd ad;
    ad.protocol = ia::kProtoPathlets;
    ad.payload = encode_pathlet_ad(make_pathlet(fid, {100 + fid}, kDest));
    ads.push_back(std::move(ad));
  }
  ia::IntegratedAdvertisement ia;
  ia.destination = kDest;
  PathletEgressTranslation egress(island);
  egress.to_ia(ads, ia);
  EXPECT_EQ(count_pathlets(ia), 3u);

  PathletIngressTranslation ingress;
  const auto recovered = ingress.from_ia(ia);
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(decode_pathlet_ad(recovered[0].payload).fid, 1u);
}

TEST(PathletTranslation, IngressPreservesPathVector) {
  ia::IntegratedAdvertisement ia;
  ia.destination = kDest;
  ia.path_vector.prepend_as(7);
  ia.path_vector.prepend_as(6);
  ia.add_island_descriptor(ia::IslandId::assigned(1), ia::kProtoPathlets,
                           ia::keys::kPathletList,
                           encode_pathlets({make_pathlet(1, {101}, kDest)}));
  PathletIngressTranslation ingress;
  const auto ads = ingress.from_ia(ia);
  ASSERT_EQ(ads.size(), 1u);
  EXPECT_EQ(ads[0].ingress_path_vector, ia.path_vector);
}

TEST(PathletRedistribution, OnlyWhenDelivering) {
  PathletRedistribution redist(42, net::Ipv4Address(42));
  ia::IntegratedAdvertisement ia;
  ia.destination = kDest;
  ia.path_vector.prepend_as(7);
  EXPECT_FALSE(redist.redistribute(kDest, ia).has_value());
  ia.add_island_descriptor(ia::IslandId::assigned(1), ia::kProtoPathlets,
                           ia::keys::kPathletList,
                           encode_pathlets({make_pathlet(1, {101}, kDest)}));
  const auto attrs = redist.redistribute(kDest, ia);
  ASSERT_TRUE(attrs.has_value());
  EXPECT_TRUE(attrs->as_path.contains(42));
  EXPECT_TRUE(attrs->as_path.contains(7));
  EXPECT_EQ(attrs->origin, bgp::Origin::kIncomplete);
}

// Figure 8, pathlet variant. Island A (ASes 1=A1, 2=A2, 3=A3) holds four
// one-hop pathlets toward D; A2 composes two into a two-hop pathlet. A2's
// IA crosses the gulf (AS 7); island B (AS 9 = S) must see all five
// pathlets (four one-hop + the composed two-hop), as in Section 6.1.
TEST(PathletGulf, SourceSeesAllFivePathlets) {
  const auto island_a = ia::IslandId::assigned(0xA);
  const auto island_b = ia::IslandId::assigned(0xB);
  simnet::DbgpNetwork net;

  PathletStore store_a2, store_s;

  auto add_pathlet_as = [&net](bgp::AsNumber asn, ia::IslandId island, PathletStore* store) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoPathlets;
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(
        std::make_unique<PathletModule>(PathletModule::Config{island}, store));
    speaker.add_module(std::make_unique<BgpModule>());
  };

  add_pathlet_as(1, island_a, nullptr);       // A1 (origin side)
  add_pathlet_as(2, island_a, &store_a2);     // A2: composing border AS
  core::DbgpConfig gulf;
  gulf.asn = 7;
  gulf.next_hop = net::Ipv4Address(7);
  net.add_as(gulf).add_module(std::make_unique<BgpModule>());
  add_pathlet_as(9, island_b, &store_s);      // S

  // The four one-hop pathlets disseminated within island A (within-island
  // advertisement format = single-pathlet ads).
  const std::vector<Pathlet> one_hop = {
      make_pathlet(1, {101, 102}),
      make_pathlet(2, {102, 104}, kDest),
      make_pathlet(3, {101, 103}),
      make_pathlet(4, {103, 104}, kDest),
  };
  for (const auto& p : one_hop) {
    store_a2.add_local(decode_pathlet_ad(encode_pathlet_ad(p)));  // via the ad format
  }
  // A2 composes pathlets 1 and 2 into a two-hop pathlet.
  ASSERT_TRUE(store_a2.compose(1, 2, 50).has_value());
  ASSERT_EQ(store_a2.locals().size(), 5u);

  net.add_link(1, 2, /*same_island=*/true);
  net.add_link(2, 7);
  net.add_link(7, 9);
  net.originate(1, kDest);
  net.run_to_convergence();

  const auto* best = net.speaker(9).best(kDest);
  ASSERT_NE(best, nullptr);
  // All five pathlets crossed the gulf inside the island descriptor and
  // were learned into S's store by the ingress side.
  EXPECT_EQ(count_pathlets(best->ia), 5u);
  EXPECT_EQ(store_s.all().size(), 5u);
  EXPECT_NE(store_s.find(50), nullptr);
  EXPECT_EQ(store_s.find(50)->vias, (std::vector<std::uint32_t>{101, 102, 104}));
  EXPECT_EQ(store_s.locals().size(), 0u);  // learned, not local
}

}  // namespace
}  // namespace dbgp::protocols
