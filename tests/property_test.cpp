// Property-based tests over randomized inputs: comparator ordering laws for
// every decision module, loop-freeness and pass-through conservation across
// random networks, convergence/quiescence invariants, and failure injection.
#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/bgpsec.h"
#include "protocols/eqbgp.h"
#include "protocols/pathlet.h"
#include "protocols/rbgp.h"
#include "protocols/scion.h"
#include "protocols/wiser.h"
#include "simnet/fib_builder.h"
#include "simnet/network.h"
#include "topology/hierarchy.h"
#include "util/rng.h"

namespace dbgp {
namespace {

// -- Comparator laws -------------------------------------------------------------

core::IaRoute random_route(util::Rng& rng) {
  core::IaRoute route;
  route.ia.destination = *net::Prefix::parse("10.0.0.0/8");
  const auto hops = rng.next_below(5) + 1;
  for (std::uint32_t i = 0; i < hops; ++i) {
    route.ia.path_vector.prepend_as(rng.next_u32() % 1000 + 1);
  }
  route.from_peer = rng.next_below(4);
  route.neighbor_as = rng.next_u32() % 100 + 1;
  route.sequence = rng.next_u32() % 50;
  if (rng.next_bool(0.5)) {
    route.ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                                 protocols::encode_wiser_cost(rng.next_u32() % 500));
  }
  if (rng.next_bool(0.5)) {
    route.ia.set_path_descriptor(ia::kProtoEqBgp, ia::keys::kEqBgpQos,
                                 protocols::encode_eqbgp_bandwidth(rng.next_u32() % 1000 + 1));
  }
  if (rng.next_bool(0.4)) {
    route.ia.baseline.local_pref = rng.next_u32() % 300;
  }
  if (rng.next_bool(0.4)) {
    route.ia.add_island_descriptor(
        ia::IslandId::assigned(rng.next_u32() % 8 + 1), ia::kProtoScion,
        ia::keys::kScionPaths,
        protocols::encode_scion_paths({{{1, 2}}, {{3, 4}}}));
  }
  return route;
}

class ComparatorLaws : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<core::DecisionModule> make_module(int which) {
    switch (which) {
      case 0: return std::make_unique<protocols::BgpModule>();
      case 1:
        return std::make_unique<protocols::WiserModule>(
            protocols::WiserModule::Config{ia::IslandId::assigned(1), 1,
                                           net::Ipv4Address(1, 1, 1, 1)},
            nullptr);
      case 2:
        return std::make_unique<protocols::EqBgpModule>(
            protocols::EqBgpModule::Config{ia::IslandId::assigned(1), 100});
      case 3:
        return std::make_unique<protocols::ScionModule>(
            protocols::ScionModule::Config{ia::IslandId::assigned(1), {}});
      case 4:
        return std::make_unique<protocols::PathletModule>(
            protocols::PathletModule::Config{ia::IslandId::assigned(1)}, nullptr);
      case 5:
        return std::make_unique<protocols::RBgpModule>(
            protocols::RBgpModule::Config{ia::IslandId::assigned(1)});
      default: {
        static protocols::AttestationAuthority authority;
        return std::make_unique<protocols::BgpSecModule>(
            protocols::BgpSecModule::Config{1, ia::IslandId::assigned(1), false},
            &authority);
      }
    }
  }
};

TEST_P(ComparatorLaws, StrictWeakOrdering) {
  auto module = make_module(GetParam());
  util::Rng rng(1000 + GetParam());
  std::vector<core::IaRoute> routes;
  for (int i = 0; i < 20; ++i) routes.push_back(random_route(rng));

  for (const auto& a : routes) {
    // Irreflexivity.
    EXPECT_FALSE(module->better(a, a)) << module->name();
    for (const auto& b : routes) {
      // Antisymmetry.
      if (module->better(a, b)) {
        EXPECT_FALSE(module->better(b, a)) << module->name();
      }
      // Transitivity (spot-check over triples).
      for (const auto& c : routes) {
        if (module->better(a, b) && module->better(b, c)) {
          EXPECT_TRUE(module->better(a, c)) << module->name();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModules, ComparatorLaws, ::testing::Range(0, 7));

// -- Network-level properties -------------------------------------------------------

struct RandomNetwork {
  simnet::DbgpNetwork net;
  std::vector<bgp::AsNumber> ases;

  explicit RandomNetwork(std::uint64_t seed, std::size_t n = 24) {
    util::Rng rng(seed);
    topology::HierarchyConfig config;
    config.tier1 = 3;
    config.transits = 6;
    config.stubs = n - 9;
    const auto hierarchy = topology::generate_hierarchy(config, rng);
    for (topology::NodeId u = 0; u < hierarchy.graph.size(); ++u) {
      const bgp::AsNumber asn = u + 1;
      core::DbgpConfig speaker_config;
      speaker_config.asn = asn;
      speaker_config.next_hop = net::Ipv4Address(asn);
      net.add_as(speaker_config).add_module(std::make_unique<protocols::BgpModule>());
      ases.push_back(asn);
    }
    for (topology::NodeId u = 0; u < hierarchy.graph.size(); ++u) {
      for (const auto& edge : hierarchy.graph.neighbors(u)) {
        if (edge.neighbor > u) net.add_link(u + 1, edge.neighbor + 1);
      }
    }
  }
};

class NetworkProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkProperties, ConvergesLoopFreeAndQuiescent) {
  RandomNetwork fixture(GetParam());
  util::Rng rng(GetParam() ^ 0x5eedULL);

  // Originate a handful of prefixes at random ASes.
  for (int i = 0; i < 5; ++i) {
    const auto asn = fixture.ases[rng.next_below(static_cast<std::uint32_t>(
        fixture.ases.size()))];
    fixture.net.originate(asn, net::Prefix(net::Ipv4Address(0xc0000000u + (i << 16)), 24));
  }
  const std::size_t events = fixture.net.run_to_convergence(500000);
  ASSERT_LT(events, 500000u) << "did not converge";

  for (const auto asn : fixture.ases) {
    const auto& speaker = fixture.net.speaker(asn);
    for (const auto& prefix : speaker.selected_prefixes()) {
      const auto* best = speaker.best(prefix);
      ASSERT_NE(best, nullptr);
      // Originated prefixes legitimately carry our own AS in the vector.
      if (best->from_peer == bgp::kInvalidPeer) continue;
      // Loop-freeness: the selected path never mentions this AS.
      EXPECT_FALSE(best->ia.path_vector.contains_as(asn))
          << "AS" << asn << " selected a looping path " << best->ia.path_vector.to_string();
      // No duplicate ASes anywhere in the path.
      std::set<bgp::AsNumber> seen;
      for (const auto& e : best->ia.path_vector.elements()) {
        if (e.kind != ia::PathElement::Kind::kAs) continue;
        EXPECT_TRUE(seen.insert(e.asn).second)
            << "duplicate AS" << e.asn << " in " << best->ia.path_vector.to_string();
      }
    }
  }
  // Quiescence: after convergence, no speaker spontaneously emits more.
  EXPECT_EQ(fixture.net.run_to_convergence(), 0u);
}

TEST_P(NetworkProperties, PassThroughConservedAcrossRandomTopology) {
  RandomNetwork fixture(GetParam());
  const bgp::AsNumber origin = fixture.ases.front();
  // Attach opaque control information for a protocol nobody implements.
  const std::vector<std::uint8_t> payload = {0xfe, 0xed, 0xfa, 0xce};
  fixture.net.speaker(origin).export_filters().add(
      "alien", [&payload](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
        ia.set_path_descriptor(777, 3, payload);
        return true;
      });
  const auto prefix = *net::Prefix::parse("203.0.113.0/24");
  fixture.net.originate(origin, prefix);
  fixture.net.run_to_convergence(500000);

  for (const auto asn : fixture.ases) {
    if (asn == origin) continue;
    const auto* best = fixture.net.speaker(asn).best(prefix);
    ASSERT_NE(best, nullptr) << "AS" << asn << " unreachable";
    const auto* d = best->ia.find_path_descriptor(777, 3);
    ASSERT_NE(d, nullptr) << "AS" << asn << " lost the alien descriptor";
    EXPECT_EQ(d->value, payload);
  }
}

TEST_P(NetworkProperties, SurvivesLinkFlaps) {
  RandomNetwork fixture(GetParam());
  util::Rng rng(GetParam() * 31 + 7);
  const auto prefix = *net::Prefix::parse("198.51.100.0/24");
  const bgp::AsNumber origin = fixture.ases.front();
  fixture.net.originate(origin, prefix);
  fixture.net.run_to_convergence(500000);

  // Flap: pick a non-origin AS with a best route and kill its primary
  // adjacency; everyone must either re-route or cleanly lose the prefix,
  // with no loops and full quiescence afterwards.
  for (int flap = 0; flap < 3; ++flap) {
    const auto victim = fixture.ases[1 + rng.next_below(static_cast<std::uint32_t>(
        fixture.ases.size() - 1))];
    const auto* best = fixture.net.speaker(victim).best(prefix);
    if (best == nullptr || best->from_peer == bgp::kInvalidPeer) continue;
    const auto neighbor = fixture.net.peer_as_of(victim, best->from_peer);
    fixture.net.link(victim, neighbor).set_state(simnet::LinkState::kDown);
    const std::size_t events = fixture.net.run_to_convergence(500000);
    ASSERT_LT(events, 500000u);
    const auto* after = fixture.net.speaker(victim).best(prefix);
    if (after != nullptr) {
      EXPECT_FALSE(after->ia.path_vector.contains_as(victim));
    }
  }
  EXPECT_EQ(fixture.net.run_to_convergence(), 0u);
}

TEST_P(NetworkProperties, DataPlaneFollowsAdvertisedPaths) {
  // Control/data-plane consistency: a packet injected anywhere must
  // traverse exactly the ASes named in the source's selected path vector,
  // in order.
  RandomNetwork fixture(GetParam());
  const bgp::AsNumber origin = fixture.ases.back();
  const auto prefix = *net::Prefix::parse("203.0.113.0/24");
  fixture.net.originate(origin, prefix);
  fixture.net.run_to_convergence(500000);

  const auto dp = simnet::build_data_plane(fixture.net);
  for (const auto asn : fixture.ases) {
    if (asn == origin) continue;
    const auto* best = fixture.net.speaker(asn).best(prefix);
    ASSERT_NE(best, nullptr);
    simnet::Packet packet;
    packet.stack.push_back(simnet::Header::ipv4(net::Ipv4Address(203, 0, 113, 1)));
    const auto trace = dp.forward(asn, packet);
    ASSERT_TRUE(trace.delivered) << "AS" << asn << ": " << trace.drop_reason;
    // hops = [asn, pv...]; compare against the path vector's AS entries.
    std::vector<bgp::AsNumber> expected{asn};
    for (const auto& e : best->ia.path_vector.elements()) {
      ASSERT_EQ(e.kind, ia::PathElement::Kind::kAs);  // no islands here
      expected.push_back(e.asn);
    }
    EXPECT_EQ(trace.hops, expected) << "AS" << asn;
  }
}

TEST_P(NetworkProperties, HeterogeneousProtocolsConverge) {
  // Regression for a real bug: comparators that rank on non-monotone
  // metrics (bandwidth-first, validity-first, count-first) or tie-break on
  // arrival order caused persistent oscillation once enough ASes were
  // upgraded. Every module's ordering is now convergence-safe; this pins it.
  util::Rng rng(GetParam() * 977 + 3);
  topology::HierarchyConfig config;
  config.tier1 = 3;
  config.transits = 5;
  config.stubs = 16;
  const auto hierarchy = topology::generate_hierarchy(config, rng);
  const std::size_t n = hierarchy.graph.size();

  static protocols::AttestationAuthority authority;
  simnet::DbgpNetwork net;
  std::vector<std::unique_ptr<protocols::PathletStore>> stores;
  const ia::ProtocolId protocols_pool[] = {ia::kProtoWiser,    ia::kProtoEqBgp,
                                           ia::kProtoBgpSec,   ia::kProtoScion,
                                           ia::kProtoPathlets, ia::kProtoRBgp};
  for (std::size_t u = 0; u < n; ++u) {
    const bgp::AsNumber asn = static_cast<bgp::AsNumber>(u + 1);
    const auto island = ia::IslandId::from_as(asn);
    const ia::ProtocolId chosen = protocols_pool[rng.next_below(6)];
    core::DbgpConfig speaker_config;
    speaker_config.asn = asn;
    speaker_config.next_hop = net::Ipv4Address(asn);
    speaker_config.island = island;
    speaker_config.island_protocol = chosen;
    speaker_config.active_protocol = chosen;  // the new protocol IS active
    auto& speaker = net.add_as(speaker_config);
    switch (chosen) {
      case ia::kProtoWiser:
        speaker.add_module(std::make_unique<protocols::WiserModule>(
            protocols::WiserModule::Config{island, rng.next_below(100) + 1ull,
                                           net::Ipv4Address(asn)},
            nullptr));
        break;
      case ia::kProtoEqBgp:
        speaker.add_module(std::make_unique<protocols::EqBgpModule>(
            protocols::EqBgpModule::Config{island, rng.next_below(1000) + 1ull}));
        break;
      case ia::kProtoBgpSec:
        speaker.add_module(std::make_unique<protocols::BgpSecModule>(
            protocols::BgpSecModule::Config{asn, island, false}, &authority));
        break;
      case ia::kProtoScion:
        speaker.add_module(std::make_unique<protocols::ScionModule>(
            protocols::ScionModule::Config{island, {{{asn, asn + 1}}}}));
        break;
      case ia::kProtoPathlets: {
        auto store = std::make_unique<protocols::PathletStore>();
        store->add_local({asn * 10, {asn, asn + 1}, std::nullopt});
        speaker.add_module(std::make_unique<protocols::PathletModule>(
            protocols::PathletModule::Config{island}, store.get()));
        stores.push_back(std::move(store));
        break;
      }
      default:
        speaker.add_module(
            std::make_unique<protocols::RBgpModule>(protocols::RBgpModule::Config{island}));
        break;
    }
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }
  for (topology::NodeId u = 0; u < n; ++u) {
    for (const auto& e : hierarchy.graph.neighbors(u)) {
      if (e.neighbor > u) net.add_link(u + 1, e.neighbor + 1);
    }
  }
  for (std::size_t i = 0; i < 6; ++i) {
    const bgp::AsNumber origin =
        static_cast<bgp::AsNumber>(rng.next_below(static_cast<std::uint32_t>(n)) + 1);
    net.originate(origin, net::Prefix(net::Ipv4Address(0xac100000u + (static_cast<std::uint32_t>(i) << 12)), 20));
  }
  const std::size_t events = net.run_to_convergence(300000);
  EXPECT_LT(events, 300000u) << "heterogeneous network failed to converge";
  EXPECT_EQ(net.run_to_convergence(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperties, ::testing::Values(1, 2, 3, 4, 5));

// -- Failure injection: corrupted frames -----------------------------------------

TEST(FailureInjection, CorruptFramesDoNotCrashOrPoison) {
  core::DbgpConfig config;
  config.asn = 50;
  config.next_hop = net::Ipv4Address(50);
  core::DbgpSpeaker speaker(config);
  speaker.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId peer = speaker.add_peer(49);

  // A valid route first.
  ia::IntegratedAdvertisement good;
  good.destination = *net::Prefix::parse("10.0.0.0/8");
  good.path_vector.prepend_as(49);
  good.baseline.as_path = good.path_vector.to_bgp_as_path();
  good.baseline.next_hop = net::Ipv4Address(49);
  speaker.handle_ia(peer, good);
  ASSERT_NE(speaker.best(good.destination), nullptr);

  // Now a storm of corrupted frames: every one must throw DecodeError (the
  // network layer logs and drops) and leave the good route untouched.
  util::Rng rng(123);
  auto frame = core::DbgpSpeaker::encode_announce(good, {});
  for (int i = 0; i < 200; ++i) {
    auto corrupted = frame;
    const auto flips = rng.next_below(6) + 1;
    for (std::uint32_t f = 0; f < flips; ++f) {
      corrupted[rng.next_below(static_cast<std::uint32_t>(corrupted.size()))] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    }
    try {
      speaker.handle_frame(peer, corrupted);
    } catch (const util::DecodeError&) {
      // expected for most corruptions
    }
  }
  // A corrupted frame that still decodes may legitimately replace the route
  // (garbage-in at the transport layer is the peer's bug, not ours); re-send
  // the good announcement and verify the speaker is fully functional.
  speaker.handle_frame(peer, frame);
  const auto* still = speaker.best(good.destination);
  ASSERT_NE(still, nullptr);
  EXPECT_TRUE(still->ia.path_vector.contains_as(49));
}

}  // namespace
}  // namespace dbgp
