// Protocol differential suite: every decision-module archetype (the paper's
// Table 1 protocols plus the FC-BGP / StackVec extensions) runs on one shared
// 12-AS mixed-adoption mesh, and the run must come out the same whichever
// processing path delivered the frames:
//
//   * batched delivery is bit-identical at every speaker thread count —
//     Loc-RIB/adj-in/adj-out byte records, emission order, and churn stats
//     all compare equal (the DESIGN.md §13 contract, here exercised with
//     every protocol's annotate/better hooks in the loop, not just BGP's);
//   * immediate delivery converges to the same routes: every AS selects the
//     same prefixes over the same path vectors from the same peers. Two
//     things are deliberately NOT compared across delivery modes: emission
//     order (batching coalesces per-prefix decisions at flush, so the modes
//     legitimately emit different frame sequences — the committed figure-8
//     traces differ the same way) and raw descriptor bytes (history-
//     dependent module state — R-BGP failover paths, pathlet stores — learns
//     from transient routes that only the immediate mode ever surfaces, so
//     descriptor payloads can differ while the routes do not).
//
// Part of dbgp_concurrency_tests (ctest -L concurrency) so dbgp_tsan_check
// re-runs exactly this surface under ThreadSanitizer and dbgp_asan_check
// under AddressSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/speaker.h"
#include "protocols/bgp_module.h"
#include "protocols/bgpsec.h"
#include "protocols/eqbgp.h"
#include "protocols/fcbgp.h"
#include "protocols/hlp.h"
#include "protocols/lisp.h"
#include "protocols/pathlet.h"
#include "protocols/rbgp.h"
#include "protocols/scion.h"
#include "protocols/stackvec.h"
#include "protocols/wiser.h"
#include "simnet/network.h"
#include "telemetry/trace.h"

namespace dbgp {
namespace {

net::Prefix nth_prefix(std::uint32_t i) {
  return net::Prefix(net::Ipv4Address((10u << 24) | (i << 8)), 24);
}

// One mesh node: AS number, protocol archetype, island (0 = gulf).
struct NodeSpec {
  bgp::AsNumber asn = 0;
  std::string protocol;
  std::uint32_t island = 0;
};

// The shared mixed-adoption mesh: a 12-AS ring with chords, one AS per
// archetype (two plain-BGP gulf ASes complete the ring). Islands are small
// on purpose — single-member islands still drive every gateway/egress code
// path (membership stamping, stack-vector pushes, island descriptors).
const std::vector<NodeSpec> kMesh = {
    {1, "bgp", 0},      {2, "wiser", 2},   {3, "eq-bgp", 3},
    {4, "bgpsec", 0},   {5, "r-bgp", 5},   {6, "lisp", 6},
    {7, "scion", 7},    {8, "pathlets", 8}, {9, "hlp", 9},
    {10, "fcbgp", 0},   {11, "stackvec", 11}, {12, "bgp", 0},
};

const std::vector<std::pair<bgp::AsNumber, bgp::AsNumber>> kLinks = {
    {1, 2},  {2, 3},  {3, 4},  {4, 5},  {5, 6},  {6, 7},
    {7, 8},  {8, 9},  {9, 10}, {10, 11}, {11, 12}, {12, 1},
    // Chords so the decision ladders face real alternatives, not a line.
    {1, 5},  {2, 8},  {4, 10}, {6, 12},
};

struct Mesh {
  // Stores referenced by pathlet modules; must outlive the network.
  std::vector<std::unique_ptr<protocols::PathletStore>> pathlet_stores;
  protocols::AttestationAuthority authority;
  std::unique_ptr<simnet::DbgpNetwork> net;
};

std::unique_ptr<core::DecisionModule> module_for(const NodeSpec& spec, Mesh& mesh) {
  const ia::IslandId island =
      spec.island == 0 ? ia::IslandId{} : ia::IslandId::assigned(spec.island);
  if (spec.protocol == "wiser") {
    return std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{island, 3 + spec.asn, net::Ipv4Address(spec.asn)},
        nullptr);
  }
  if (spec.protocol == "eq-bgp") {
    return std::make_unique<protocols::EqBgpModule>(
        protocols::EqBgpModule::Config{island, 100 + spec.asn});
  }
  if (spec.protocol == "bgpsec") {
    return std::make_unique<protocols::BgpSecModule>(
        protocols::BgpSecModule::Config{spec.asn, island, false}, &mesh.authority);
  }
  if (spec.protocol == "r-bgp") {
    return std::make_unique<protocols::RBgpModule>(protocols::RBgpModule::Config{island});
  }
  if (spec.protocol == "lisp") {
    protocols::LispMapping mapping;
    mapping.eid_prefix = *net::Prefix::parse("0.0.0.0/0");
    mapping.rlocs = {net::Ipv4Address(spec.asn)};
    return std::make_unique<protocols::LispModule>(
        protocols::LispModule::Config{island, mapping});
  }
  if (spec.protocol == "scion") {
    std::vector<protocols::ScionPath> paths;
    paths.push_back({{spec.asn, spec.asn + 100}});
    return std::make_unique<protocols::ScionModule>(
        protocols::ScionModule::Config{island, std::move(paths)});
  }
  if (spec.protocol == "pathlets") {
    auto store = std::make_unique<protocols::PathletStore>();
    store->add_local({spec.asn, {spec.asn + 1000, spec.asn + 2000}, {}});
    auto module = std::make_unique<protocols::PathletModule>(
        protocols::PathletModule::Config{island}, store.get());
    mesh.pathlet_stores.push_back(std::move(store));
    return module;
  }
  if (spec.protocol == "hlp") {
    return std::make_unique<protocols::HlpModule>(
        protocols::HlpModule::Config{island, 1, 2}, nullptr);
  }
  if (spec.protocol == "fcbgp") {
    return std::make_unique<protocols::FcBgpModule>(
        protocols::FcBgpModule::Config{spec.asn, island}, &mesh.authority);
  }
  if (spec.protocol == "stackvec") {
    return std::make_unique<protocols::StackVecModule>(
        protocols::StackVecModule::Config{spec.asn, island,
                                          net::Ipv4Address(spec.asn)});
  }
  return nullptr;  // plain BGP
}

Mesh make_mesh(simnet::DbgpNetwork::Options options) {
  Mesh mesh;
  mesh.net = std::make_unique<simnet::DbgpNetwork>(nullptr, options);
  for (const NodeSpec& spec : kMesh) {
    core::DbgpConfig config;
    config.asn = spec.asn;
    config.next_hop = net::Ipv4Address(spec.asn);
    if (spec.island != 0) {
      config.island = ia::IslandId::assigned(spec.island);
    }
    auto module = module_for(spec, mesh);
    if (module != nullptr) {
      config.island_protocol = module->protocol();
      config.active_protocol = module->protocol();
    }
    auto& speaker = mesh.net->add_as(config);
    if (module != nullptr) speaker.add_module(std::move(module));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
  }
  for (const auto& [a, b] : kLinks) mesh.net->add_link(a, b);
  return mesh;
}

// Byte-exact serialization of a record list (adj-in / Loc-RIB / adj-out).
// `with_sequence` is off for the cross-delivery-mode Loc-RIB comparison:
// the arrival counter legitimately differs when batching coalesces frames,
// while everything route-defining (prefix, peer, IA bytes) must not.
void append_records(std::string& out,
                    const std::vector<core::DbgpSpeaker::RouteRecord>& records,
                    bool with_sequence = true) {
  for (const auto& r : records) {
    out += r.prefix.to_string();
    out += '|';
    out += std::to_string(r.from_peer) + "|" + std::to_string(r.neighbor_as) + "|";
    if (with_sequence) out += std::to_string(r.sequence);
    out += std::string("|") + (r.eligible ? "1" : "0") + "|";
    out.append(reinterpret_cast<const char*>(r.bytes.data()), r.bytes.size());
    out += '\n';
  }
}

struct DiffRun {
  std::string loc_rib;     // selected routes only, byte-exact
  std::string routes;      // selected routes at path-vector level (mode-stable)
  std::string full_state;  // originated + adj-in + selected + adj-out
  std::vector<telemetry::TraceEvent> trace;
  std::uint64_t processed = 0;
};

DiffRun run_mesh(simnet::DeliveryMode delivery, std::size_t speaker_threads) {
  telemetry::PropagationTracer tracer;
  simnet::DbgpNetwork::Options options;
  options.delivery = delivery;
  options.speaker_threads = speaker_threads;
  options.tracer = &tracer;
  Mesh mesh = make_mesh(options);
  // Originations spread across archetypes: a gulf BGP AS, the BGPSec AS,
  // the FC-BGP AS, and the StackVec gateway island all source prefixes, so
  // the new descriptor kinds actually transit legacy and upgraded hops.
  std::uint32_t n = 0;
  for (const bgp::AsNumber origin : {1u, 4u, 7u, 10u, 11u}) {
    mesh.net->originate(origin, nth_prefix(n++));
    mesh.net->originate(origin, nth_prefix(n++));
  }
  const simnet::RunStats stats = mesh.net->run_to_convergence();
  EXPECT_FALSE(stats.capped);

  DiffRun result;
  result.processed = stats.processed;
  result.trace = tracer.events();
  for (const NodeSpec& spec : kMesh) {
    const auto& speaker = mesh.net->speaker(spec.asn);
    for (const auto& prefix : speaker.selected_prefixes()) {
      const auto* best = speaker.best(prefix);
      result.routes += "AS" + std::to_string(spec.asn) + " " + prefix.to_string() +
                       " peer=" + std::to_string(best->from_peer) + " via [" +
                       best->ia.path_vector.to_string() + "]\n";
    }
    const auto state = speaker.export_state();
    result.loc_rib += "AS" + std::to_string(spec.asn) + "\n";
    append_records(result.loc_rib, state.selected, /*with_sequence=*/false);
    result.full_state += "AS" + std::to_string(spec.asn) + " seq=";
    result.full_state += std::to_string(state.sequence) + "\n";
    for (const auto& p : state.originated) result.full_state += p.to_string() + "\n";
    append_records(result.full_state, state.adj_in);
    append_records(result.full_state, state.selected);
    append_records(result.full_state, state.adj_out);
  }
  return result;
}

bool same_trace(const std::vector<telemetry::TraceEvent>& a,
                const std::vector<telemetry::TraceEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].from_as != b[i].from_as ||
        a[i].to_as != b[i].to_as || a[i].frame_type != b[i].frame_type ||
        a[i].prefix != b[i].prefix || a[i].frame_bytes != b[i].frame_bytes ||
        a[i].understood != b[i].understood) {
      return false;
    }
  }
  return true;
}

TEST(ProtocolDifferential, MeshConvergesWithRoutesEverywhere) {
  const DiffRun run = run_mesh(simnet::DeliveryMode::kImmediate, 1);
  // Every AS selects every one of the 10 prefixes (the mesh is connected).
  for (const NodeSpec& spec : kMesh) {
    EXPECT_NE(run.loc_rib.find("AS" + std::to_string(spec.asn)), std::string::npos);
  }
  EXPECT_GT(run.processed, 0u);
  EXPECT_FALSE(run.trace.empty());
}

// The §13 contract, under every protocol's hooks at once: batched delivery
// is bit-identical at any speaker thread count — same emitted frame
// sequence, same byte-exact speaker state, same event count.
TEST(ProtocolDifferential, BatchedBitIdenticalAcrossThreadCounts) {
  const DiffRun baseline = run_mesh(simnet::DeliveryMode::kBatched, 1);
  ASSERT_FALSE(baseline.loc_rib.empty());
  for (const std::size_t threads : {2ul, 4ul}) {
    const DiffRun parallel = run_mesh(simnet::DeliveryMode::kBatched, threads);
    EXPECT_EQ(baseline.full_state, parallel.full_state) << threads << " threads";
    EXPECT_TRUE(same_trace(baseline.trace, parallel.trace)) << threads << " threads";
    EXPECT_EQ(baseline.processed, parallel.processed) << threads << " threads";
  }
}

// Immediate and batched delivery coalesce differently (different frame
// sequences in flight) but MUST land on the same routes: every AS selects
// the same prefixes over the same path vectors from the same peers. Raw IA
// bytes are not compared here — R-BGP failover lists and pathlet stores
// learn from transient routes that only immediate delivery surfaces, so
// descriptor payloads legitimately differ across modes (the header comment
// has the full story).
TEST(ProtocolDifferential, ImmediateAndBatchedConvergeToSameRoutes) {
  const DiffRun immediate = run_mesh(simnet::DeliveryMode::kImmediate, 1);
  const DiffRun batched = run_mesh(simnet::DeliveryMode::kBatched, 1);
  ASSERT_FALSE(immediate.routes.empty());
  EXPECT_EQ(immediate.routes, batched.routes);
}

}  // namespace
}  // namespace dbgp
