#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/lisp.h"
#include "protocols/rbgp.h"
#include "simnet/dataplane.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

const net::Prefix kPrefix = *net::Prefix::parse("198.18.0.0/16");

// -- R-BGP ---------------------------------------------------------------------

TEST(RBgp, BackupPathPayloadRoundTrip) {
  ia::IaPathVector pv;
  pv.prepend_as(3);
  pv.prepend_island(ia::IslandId::assigned(7));
  pv.prepend_as_set({8, 9});
  EXPECT_EQ(ia::IaPathVector::from_payload(pv.to_payload()), pv);
}

TEST(RBgp, ExportsMostDisjointBackup) {
  RBgpModule module({ia::IslandId::from_as(5)});
  // Three candidates: primary via peer 0, a heavily-overlapping alt via
  // peer 1, a disjoint alt via peer 2.
  core::IaRoute primary;
  primary.ia.destination = kPrefix;
  primary.from_peer = 0;
  primary.ia.path_vector = ia::IaPathVector(
      {ia::PathElement::as(10), ia::PathElement::as(11), ia::PathElement::as(1)});
  core::IaRoute overlapping;
  overlapping.ia.destination = kPrefix;
  overlapping.from_peer = 1;
  overlapping.ia.path_vector = ia::IaPathVector(
      {ia::PathElement::as(20), ia::PathElement::as(11), ia::PathElement::as(1)});
  core::IaRoute disjoint;
  disjoint.ia.destination = kPrefix;
  disjoint.from_peer = 2;
  disjoint.ia.path_vector = ia::IaPathVector(
      {ia::PathElement::as(30), ia::PathElement::as(31), ia::PathElement::as(1)});

  ASSERT_TRUE(module.import_filter(primary));
  ASSERT_TRUE(module.import_filter(overlapping));
  ASSERT_TRUE(module.import_filter(disjoint));

  ia::IntegratedAdvertisement out = primary.ia;
  core::ExportContext ctx;
  ctx.own_as = 5;
  ctx.to_peer_as = 99;
  module.annotate_export(primary, out, ctx);

  const auto backup = RBgpModule::backup_path(out);
  ASSERT_FALSE(backup.empty());
  EXPECT_TRUE(backup.contains_as(30));  // the disjoint one won
  EXPECT_TRUE(backup.contains_as(5));   // we prepended ourselves
  // Only AS 1 (the origin) is shared with the primary.
  EXPECT_FALSE(backup.contains_as(11));
}

TEST(RBgp, BackupNeverRoutesThroughExportTarget) {
  RBgpModule module({ia::IslandId::from_as(5)});
  core::IaRoute primary;
  primary.ia.destination = kPrefix;
  primary.from_peer = 0;
  primary.ia.path_vector = ia::IaPathVector({ia::PathElement::as(10), ia::PathElement::as(1)});
  core::IaRoute alt;
  alt.ia.destination = kPrefix;
  alt.from_peer = 1;
  alt.ia.path_vector = ia::IaPathVector({ia::PathElement::as(99), ia::PathElement::as(1)});
  ASSERT_TRUE(module.import_filter(primary));
  ASSERT_TRUE(module.import_filter(alt));

  ia::IntegratedAdvertisement out = primary.ia;
  core::ExportContext ctx;
  ctx.own_as = 5;
  ctx.to_peer_as = 99;  // the only alternative goes through the peer itself
  module.annotate_export(primary, out, ctx);
  EXPECT_TRUE(RBgpModule::backup_path(out).empty());
}

// Quick failover across a gulf: the square 1-(2,3)-4 with AS 4 as an R-BGP
// adopter. When its primary vanishes, AS 4 already knows a backup path that
// it learned in-band — no reconvergence wait.
TEST(RBgp, AcrossGulfBackupSurvives) {
  simnet::DbgpNetwork net;
  auto add_rbgp = [&](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = ia::IslandId::from_as(asn);
    config.island_protocol = ia::kProtoRBgp;
    config.active_protocol = ia::kProtoRBgp;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<RBgpModule>(RBgpModule::Config{
        ia::IslandId::from_as(asn)}));
    speaker.add_module(std::make_unique<BgpModule>());
  };
  auto add_gulf = [&](bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<BgpModule>());
  };
  add_rbgp(1);   // origin (R-BGP island)
  add_gulf(2);   // two gulf paths
  add_gulf(3);
  add_rbgp(4);   // adopter that knows both paths and exports a backup
  add_gulf(5);   // downstream receiver across another legacy hop
  net.add_link(1, 2);
  net.add_link(1, 3);
  net.add_link(2, 4);
  net.add_link(3, 4);
  net.add_link(4, 5);
  net.originate(1, kPrefix);
  net.run_to_convergence();

  const auto* best = net.speaker(5).best(kPrefix);
  ASSERT_NE(best, nullptr);
  // AS 4 knew two disjoint gulf paths and attached the unused one as the
  // backup; it survived the hop to AS 5 (and would survive any gulf).
  const auto backup = RBgpModule::backup_path(*best);
  ASSERT_FALSE(backup.empty());
  const auto& primary = best->ia.path_vector;
  // Primary and backup diverge right after AS 4: one goes via 2, the other
  // via 3.
  const bool primary_via_2 = primary.contains_as(2);
  EXPECT_TRUE(backup.contains_as(primary_via_2 ? 3 : 2));
  EXPECT_FALSE(backup.contains_as(primary_via_2 ? 2 : 3));
  EXPECT_TRUE(backup.contains_as(1));  // still rooted at the destination
}

// -- LISP ----------------------------------------------------------------------

TEST(Lisp, MappingCodecRoundTrip) {
  LispMapping mapping;
  mapping.eid_prefix = *net::Prefix::parse("198.18.0.0/16");
  mapping.rlocs = {net::Ipv4Address(192, 0, 2, 1), net::Ipv4Address(192, 0, 2, 2)};
  mapping.map_version = 3;
  EXPECT_EQ(decode_lisp_mapping(encode_lisp_mapping(mapping)), mapping);
}

TEST(Lisp, MobilityBumpsVersion) {
  LispMapping mapping;
  mapping.eid_prefix = kPrefix;
  mapping.rlocs = {net::Ipv4Address(192, 0, 2, 1)};
  LispModule module({ia::IslandId::from_as(1), mapping});
  module.update_mapping({net::Ipv4Address(203, 0, 113, 1)});
  EXPECT_EQ(module.mapping().map_version, 1u);
  EXPECT_EQ(module.mapping().rlocs[0], net::Ipv4Address(203, 0, 113, 1));
}

TEST(Lisp, FreshestMappingWins) {
  ia::IntegratedAdvertisement ia;
  ia.destination = kPrefix;
  const auto island = ia::IslandId::from_as(1);
  LispMapping old_mapping{kPrefix, {net::Ipv4Address(1, 1, 1, 1)}, 1};
  LispMapping new_mapping{kPrefix, {net::Ipv4Address(2, 2, 2, 2)}, 5};
  ia.mutable_island_descriptors().push_back(
      {island, ia::kProtoLisp, ia::keys::kLispMapping, encode_lisp_mapping(old_mapping)});
  ia.mutable_island_descriptors().push_back(
      {island, ia::kProtoLisp, ia::keys::kLispMapping, encode_lisp_mapping(new_mapping)});
  const auto got = LispModule::mapping_for(ia, island);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->map_version, 5u);
  EXPECT_EQ(got->rlocs[0], net::Ipv4Address(2, 2, 2, 2));
}

// Mobility across a gulf: the mapping descriptor crosses legacy ASes; a
// remote correspondent encapsulates to the current RLOC and reaches the
// endpoint at its new attachment point after a move.
TEST(Lisp, MappingCrossesGulfAndSupportsMobility) {
  simnet::DbgpNetwork net;
  const auto island = ia::IslandId::from_as(1);

  core::DbgpConfig origin_config;
  origin_config.asn = 1;
  origin_config.next_hop = net::Ipv4Address(1);
  origin_config.island = island;
  origin_config.island_protocol = ia::kProtoLisp;
  origin_config.active_protocol = ia::kProtoLisp;
  auto& origin = net.add_as(origin_config);
  LispMapping mapping{kPrefix, {net::Ipv4Address(192, 0, 2, 1)}, 0};
  auto module = std::make_unique<LispModule>(LispModule::Config{island, mapping});
  LispModule* lisp = module.get();
  origin.add_module(std::move(module));
  origin.add_module(std::make_unique<BgpModule>());

  for (bgp::AsNumber asn : {2u, 3u}) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<BgpModule>());
  }
  net.add_link(1, 2);
  net.add_link(2, 3);
  net.originate(1, kPrefix);
  net.run_to_convergence();

  const auto* at3 = net.speaker(3).best(kPrefix);
  ASSERT_NE(at3, nullptr);
  auto got = LispModule::mapping_for(at3->ia, island);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->rlocs[0], net::Ipv4Address(192, 0, 2, 1));

  // The endpoint moves: new RLOC, version bump, re-advertise.
  lisp->update_mapping({net::Ipv4Address(203, 0, 113, 9)});
  net.withdraw(1, kPrefix);
  net.run_to_convergence();
  net.originate(1, kPrefix);
  net.run_to_convergence();

  const auto* after = net.speaker(3).best(kPrefix);
  ASSERT_NE(after, nullptr);
  got = LispModule::mapping_for(after->ia, island);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->map_version, 1u);
  EXPECT_EQ(got->rlocs[0], net::Ipv4Address(203, 0, 113, 9));
}

}  // namespace
}  // namespace dbgp::protocols
