// Interner and arena property tests (DESIGN.md §14): refcount accounting on
// AttrInterner under random churn, handle-identity reinstall suppression in
// the Loc-RIB, descriptor-tail canonicalization with GC, and arena-reuse
// invariants on the pmr-backed RIBs. Part of `dbgp_concurrency_tests`
// (ctest -L concurrency) so dbgp_tsan_check / dbgp_asan_check replay the
// sharded-churn case under the sanitizers.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <memory_resource>
#include <utility>
#include <variant>
#include <vector>

#include "bgp/speaker.h"
#include "core/speaker.h"
#include "ia/codec.h"
#include "ia/descriptor_interner.h"
#include "protocols/bgp_module.h"
#include "protocols/wiser.h"
#include "util/arena.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dbgp {
namespace {

net::Prefix nth_prefix(std::uint32_t i) {
  return net::Prefix(net::Ipv4Address((10u << 24) | (i << 8)), 24);
}

// -- AttrInterner refcounts ---------------------------------------------------

bgp::AttrHandle intern_path(bgp::AttrInterner& interner, std::vector<bgp::AsNumber> path,
                            std::uint32_t pref = 0) {
  bgp::AttrBuilder builder;
  builder.attrs().as_path = bgp::AsPath(std::move(path));
  builder.attrs().next_hop = net::Ipv4Address(192, 0, 2, 1);
  if (pref != 0) builder.attrs().local_pref = pref;
  return std::move(builder).intern(interner);
}

TEST(AttrInterner, DedupRefcountAndRelease) {
  bgp::AttrInterner interner;
  {
    bgp::AttrHandle a = intern_path(interner, {1, 2, 3});
    bgp::AttrHandle b = intern_path(interner, {1, 2, 3});
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.get(), b.get());  // one canonical entry
    EXPECT_EQ(interner.live(), 1u);
    EXPECT_EQ(interner.stats().hits, 1u);
    EXPECT_EQ(interner.stats().misses, 1u);

    bgp::AttrHandle c = a;  // copy shares the entry
    EXPECT_EQ(c, a);
    EXPECT_EQ(interner.live(), 1u);

    bgp::AttrHandle d = std::move(c);  // move transfers, source goes null
    EXPECT_FALSE(static_cast<bool>(c));
    EXPECT_EQ(d, a);
    EXPECT_EQ(interner.live(), 1u);

    bgp::AttrHandle e = intern_path(interner, {1, 2, 3, 4});
    EXPECT_NE(e, a);
    EXPECT_EQ(interner.live(), 2u);
    EXPECT_GT(interner.bytes(), 0u);
  }
  // All handles dead: every entry erased, byte accounting back to zero.
  EXPECT_EQ(interner.live(), 0u);
  EXPECT_EQ(interner.bytes(), 0u);
}

TEST(AttrInterner, BuilderSeededFromHandleReinternsCanonically) {
  bgp::AttrInterner interner;
  bgp::AttrHandle base = intern_path(interner, {7, 8});
  // Unedited round-trip through a builder lands on the same entry.
  bgp::AttrBuilder same(base);
  EXPECT_EQ(std::move(same).intern(interner), base);
  EXPECT_EQ(interner.live(), 1u);
  // An edit produces a distinct entry and leaves the original untouched.
  bgp::AttrBuilder edited(base);
  edited.attrs().as_path.prepend(6);
  bgp::AttrHandle derived = std::move(edited).intern(interner);
  EXPECT_NE(derived, base);
  EXPECT_EQ(base->as_path.hop_count(), 2u);
  EXPECT_EQ(derived->as_path.hop_count(), 3u);
  EXPECT_EQ(interner.live(), 2u);
}

// Property: under random intern/drop churn the live-entry count always equals
// the number of distinct attribute contents currently held, and full drain
// returns the interner to empty (refcounts never leak or double-free).
TEST(AttrInterner, PropertyChurnRefcountsBalance) {
  constexpr std::uint32_t kContents = 8;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    bgp::AttrInterner interner;
    util::Rng rng(seed);
    std::vector<std::pair<std::uint32_t, bgp::AttrHandle>> held;
    std::array<std::uint32_t, kContents> counts{};
    std::uint64_t interned = 0;
    for (int step = 0; step < 2000; ++step) {
      if (held.empty() || rng.next_u32() % 3 != 0) {
        const std::uint32_t j = rng.next_u32() % kContents;
        held.emplace_back(j, intern_path(interner, {j + 1, j + 2}, 100 + j));
        ++interned;
        ++counts[j];
      } else {
        const std::size_t victim = rng.next_u32() % held.size();
        --counts[held[victim].first];
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      if (step % 100 == 0) {
        std::size_t distinct = 0;
        for (const auto count : counts) distinct += count > 0 ? 1 : 0;
        ASSERT_EQ(interner.live(), distinct) << "seed " << seed << " step " << step;
      }
    }
    const auto& stats = interner.stats();
    EXPECT_EQ(stats.hits + stats.misses, interned);
    EXPECT_LE(interner.live(), static_cast<std::size_t>(kContents));
    held.clear();
    EXPECT_EQ(interner.live(), 0u);
    EXPECT_EQ(interner.bytes(), 0u);
  }
}

// -- Loc-RIB handle-identity install ------------------------------------------

TEST(LocRib, AttrIdenticalReinstallIsSuppressed) {
  bgp::AttrInterner interner;
  util::RibArena arena;
  bgp::LocRib rib(arena.resource());

  bgp::Route route;
  route.prefix = nth_prefix(1);
  route.attrs = intern_path(interner, {1, 2});
  route.from_peer = 0;
  EXPECT_TRUE(rib.install(route));

  // A *different handle object* for the same content still compares equal
  // (pointer identity on the canonical entry) — no change, no churn.
  bgp::Route same = route;
  same.attrs = intern_path(interner, {1, 2});
  same.sequence = 99;  // arrival bookkeeping alone must not count as a change
  EXPECT_FALSE(rib.install(same));

  bgp::Route other = route;
  other.attrs = intern_path(interner, {1, 2, 3});
  EXPECT_TRUE(rib.install(other));
  EXPECT_TRUE(rib.install(route));  // flip back is a change again

  bgp::Route moved = route;
  moved.from_peer = 5;  // same attrs via a different peer IS a change
  EXPECT_TRUE(rib.install(moved));
}

// The non-allocating read surfaces: candidates() is a peer-ordered span into
// arena storage, and adj-out reads go through the visitor — no per-call
// vector materialization anywhere.
TEST(RibViews, SpanCandidatesAndAdvertisedVisitor) {
  bgp::AttrInterner interner;
  util::RibArena arena;
  bgp::AdjRibIn adj_in(arena.resource());
  const auto prefix = nth_prefix(3);
  for (const bgp::PeerId peer : {2u, 0u, 1u}) {
    bgp::Route route;
    route.prefix = prefix;
    route.attrs = intern_path(interner, {peer + 1});
    route.from_peer = peer;
    EXPECT_FALSE(adj_in.upsert(std::move(route)));
  }
  const std::span<const bgp::Route> candidates = adj_in.candidates(prefix);
  ASSERT_EQ(candidates.size(), 3u);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(candidates[i].from_peer, i);  // sorted by peer regardless of arrival
  }
  EXPECT_TRUE(adj_in.candidates(nth_prefix(99)).empty());

  bgp::AdjRibOut adj_out(arena.resource());
  const bgp::AttrHandle attrs = intern_path(interner, {1, 2});
  EXPECT_TRUE(adj_out.advertise(7, prefix, attrs));
  EXPECT_FALSE(adj_out.advertise(7, prefix, attrs));  // handle-identical: no change
  EXPECT_TRUE(adj_out.advertise(7, nth_prefix(4), intern_path(interner, {1})));
  EXPECT_EQ(adj_out.advertised_count(7), 2u);
  std::size_t visited = 0;
  adj_out.for_each_advertised(7, [&](const net::Prefix& p, const bgp::AttrHandle& h) {
    EXPECT_TRUE(static_cast<bool>(h));
    visited += p == prefix ? 1 : 0;
  });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(adj_out.find(7, prefix), attrs);
  EXPECT_FALSE(static_cast<bool>(adj_out.find(9, prefix)));
}

// -- Speaker-level churn ------------------------------------------------------

// Minimal two-speaker harness (same shape as the bgp_speaker_test Mesh) that
// records every frame it shuttles so tests can replay captured updates.
class MiniMesh {
 public:
  bgp::BgpSpeaker& add(bgp::AsNumber asn) {
    bgp::BgpSpeaker::Config config;
    config.asn = asn;
    config.router_id = net::Ipv4Address(asn);
    config.next_hop = net::Ipv4Address(asn);
    speakers_.emplace(asn, bgp::BgpSpeaker(config));
    return speakers_.at(asn);
  }

  void connect(bgp::AsNumber a, bgp::AsNumber b) {
    const bgp::PeerId id_ab = speakers_.at(a).add_peer(b);
    const bgp::PeerId id_ba = speakers_.at(b).add_peer(a);
    wiring_[{a, id_ab}] = {b, id_ba};
    wiring_[{b, id_ba}] = {a, id_ab};
    enqueue(a, speakers_.at(a).start_peer(id_ab, 0.0));
    enqueue(b, speakers_.at(b).start_peer(id_ba, 0.0));
    pump();
  }

  void originate(bgp::AsNumber asn, const net::Prefix& prefix) {
    enqueue(asn, speakers_.at(asn).originate(prefix, 0.0));
    pump();
  }

  void withdraw(bgp::AsNumber asn, const net::Prefix& prefix) {
    enqueue(asn, speakers_.at(asn).withdraw_origin(prefix, 0.0));
    pump();
  }

  bgp::BgpSpeaker& speaker(bgp::AsNumber asn) { return speakers_.at(asn); }

  // Frames delivered *to* `to`, in arrival order, as (peer-id-at-to, bytes).
  const std::vector<std::pair<bgp::PeerId, std::vector<std::uint8_t>>>& inbox(
      bgp::AsNumber to) const {
    return inboxes_.at(to);
  }

  void pump() {
    std::size_t guard = 0;
    while (!queue_.empty()) {
      ASSERT_LT(guard++, 100000u) << "message storm";
      auto [from, msg] = std::move(queue_.front());
      queue_.pop_front();
      const auto dest = wiring_.at({from, msg.peer});
      inboxes_[dest.first].emplace_back(dest.second, msg.bytes);
      enqueue(dest.first,
              speakers_.at(dest.first).handle_bytes(dest.second, msg.bytes, 0.0));
    }
  }

 private:
  void enqueue(bgp::AsNumber from, std::vector<bgp::Outgoing> out) {
    for (auto& msg : out) queue_.emplace_back(from, std::move(msg));
  }

  std::map<bgp::AsNumber, bgp::BgpSpeaker> speakers_;
  std::map<std::pair<bgp::AsNumber, bgp::PeerId>, std::pair<bgp::AsNumber, bgp::PeerId>>
      wiring_;
  std::map<bgp::AsNumber, std::vector<std::pair<bgp::PeerId, std::vector<std::uint8_t>>>>
      inboxes_;
  std::deque<std::pair<bgp::AsNumber, bgp::Outgoing>> queue_;
};

// Regression for the interned-install contract end to end: replaying a
// byte-identical UPDATE must produce *no* outgoing messages — the re-interned
// attrs hit the same canonical entry, install() reports no change, and no
// delta is queued for the downstream peer.
TEST(BgpSpeakerChurn, DuplicateUpdateEmitsNothingDownstream) {
  MiniMesh mesh;
  for (bgp::AsNumber asn : {1, 2, 3}) mesh.add(asn);
  mesh.connect(1, 2);
  mesh.connect(2, 3);
  const auto prefix = nth_prefix(0);
  mesh.originate(1, prefix);
  ASSERT_TRUE(mesh.speaker(3).loc_rib().find(prefix));

  // Find the UPDATE AS2 received from AS1 and replay it byte-for-byte.
  std::size_t replayed = 0;
  for (const auto& [peer, bytes] : mesh.inbox(2)) {
    const bgp::Message msg = bgp::decode_message(bytes);
    const auto* update = std::get_if<bgp::UpdateMessage>(&msg);
    if (update == nullptr || update->nlri.empty()) continue;
    const auto out = mesh.speaker(2).handle_bytes(peer, bytes, 1.0);
    EXPECT_TRUE(out.empty()) << "duplicate update produced " << out.size() << " frames";
    ++replayed;
  }
  EXPECT_GT(replayed, 0u);
  EXPECT_TRUE(mesh.speaker(3).loc_rib().find(prefix));
}

// Arena-reuse property: rounds of announce/withdraw churn return the
// speaker's interner live-set and arena bytes-in-use to the post-session
// baseline every round — handles pin entries exactly as long as a RIB
// references them, and pmr storage is fully returned to the pool.
TEST(BgpSpeakerChurn, InternerAndArenaReturnToBaseline) {
  MiniMesh mesh;
  mesh.add(1);
  mesh.add(2);
  mesh.connect(1, 2);
  const bgp::BgpSpeaker& rx = mesh.speaker(2);
  const std::size_t live_baseline = rx.attr_interner().live();
  const std::size_t bytes_baseline = rx.rib_arena().bytes_in_use();

  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < 64; ++i) mesh.originate(1, nth_prefix(i));
    // All 64 routes share one origin attribute set: interning collapses the
    // whole announce wave to a handful of canonical entries.
    EXPECT_GT(rx.attr_interner().live(), live_baseline);
    EXPECT_LE(rx.attr_interner().live(), live_baseline + 4) << "round " << round;
    EXPECT_GT(rx.rib_arena().bytes_in_use(), bytes_baseline);

    for (std::uint32_t i = 0; i < 64; ++i) mesh.withdraw(1, nth_prefix(i));
    EXPECT_EQ(rx.attr_interner().live(), live_baseline) << "round " << round;
    EXPECT_EQ(rx.rib_arena().bytes_in_use(), bytes_baseline) << "round " << round;
  }
  // The pool retains capacity across rounds (reuse, not growth): peak
  // reservation after round 3 equals what round 1 established.
  EXPECT_GT(rx.rib_arena().bytes_reserved(), 0u);
}

// -- RibArena accounting ------------------------------------------------------

TEST(RibArena, MeterAndReleaseBalance) {
  util::RibArena arena;
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  {
    std::pmr::vector<std::uint64_t> v(arena.resource());
    v.resize(10000);
    EXPECT_GE(arena.bytes_in_use(), 10000 * sizeof(std::uint64_t));
    EXPECT_GE(arena.bytes_peak(), arena.bytes_in_use());
  }
  // Container gone: in-use drops to zero but the pool keeps its upstream
  // reservation for reuse.
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_GT(arena.bytes_reserved(), 0u);
  arena.release();
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

// -- DescriptorInterner -------------------------------------------------------

ia::IntegratedAdvertisement make_ia(std::uint32_t prefix_index, std::uint8_t salt) {
  ia::IntegratedAdvertisement advert;
  advert.destination = nth_prefix(prefix_index);
  advert.path_vector.prepend_as(30);
  advert.path_vector.prepend_island(ia::IslandId::assigned(7));
  advert.baseline.as_path = advert.path_vector.to_bgp_as_path();
  advert.baseline.next_hop = net::Ipv4Address(198, 51, 100, 1);
  advert.set_path_descriptor(ia::kProtoWiser, 1, {salt, 2, 3, 4});
  advert.set_path_descriptor(ia::kProtoBgpSec, 2, std::vector<std::uint8_t>(64, salt));
  return advert;
}

ia::IntegratedAdvertisement decode_fresh(const ia::IntegratedAdvertisement& advert) {
  return ia::decode_ia(ia::encode_ia(advert));
}

TEST(DescriptorInterner, EqualTailsShareOneCanonicalArena) {
  ia::DescriptorInterner interner;
  // Two separate decodes of the same descriptors: distinct frame arenas,
  // identical tail bytes — different destinations do not matter, the tail
  // only covers the blob table + descriptor section.
  ia::IntegratedAdvertisement a = decode_fresh(make_ia(1, 9));
  ia::IntegratedAdvertisement b = decode_fresh(make_ia(2, 9));
  ASSERT_TRUE(a.has_opaque_tail());
  ASSERT_NE(a.opaque_tail().arena, b.opaque_tail().arena);

  interner.intern(a);
  interner.intern(b);
  EXPECT_EQ(interner.stats().misses, 1u);
  EXPECT_EQ(interner.stats().hits, 1u);
  EXPECT_EQ(interner.live(), 1u);
  EXPECT_EQ(a.opaque_tail().arena, b.opaque_tail().arena);
  // Canonical arenas are tail-only: the whole-frame buffer is droppable.
  EXPECT_EQ(a.opaque_tail().offset, 0u);
  EXPECT_EQ(interner.bytes(), a.opaque_tail().bytes().size());

  // The rebound tail still decodes to the same descriptors.
  const auto* da = a.find_path_descriptor(ia::kProtoWiser, 1);
  const auto* db = b.find_path_descriptor(ia::kProtoWiser, 1);
  ASSERT_NE(da, nullptr);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(da->value, db->value);
}

TEST(DescriptorInterner, SkipsLocalAndEditedAdvertisements) {
  ia::DescriptorInterner interner;
  ia::IntegratedAdvertisement local = make_ia(1, 1);  // never encoded: no tail
  interner.intern(local);
  ia::IntegratedAdvertisement edited = decode_fresh(make_ia(2, 2));
  edited.set_path_descriptor(ia::kProtoWiser, 1, {0xFF});  // dirties the tail
  interner.intern(edited);
  EXPECT_EQ(interner.stats().hits, 0u);
  EXPECT_EQ(interner.stats().misses, 0u);
  EXPECT_EQ(interner.live(), 0u);
}

TEST(DescriptorInterner, GcReclaimsDeadTailsAndChurnStaysBounded) {
  ia::DescriptorInterner interner;
  std::size_t max_bytes = 0;
  // 300 distinct tails, every advertisement dropped immediately: the
  // opportunistic GC inside intern() must keep retained bytes bounded
  // instead of accumulating 300 dead canonical arenas.
  for (std::uint32_t i = 0; i < 300; ++i) {
    ia::IntegratedAdvertisement advert = decode_fresh(make_ia(i, static_cast<std::uint8_t>(i)));
    interner.intern(advert);
    max_bytes = std::max(max_bytes, interner.bytes());
  }
  EXPECT_EQ(interner.stats().misses, 300u);  // all tails distinct
  const std::size_t tail_size = interner.bytes() / std::max<std::size_t>(interner.live() + 1, 1);
  EXPECT_LT(max_bytes, 300 * std::max<std::size_t>(tail_size, 64));
  interner.gc();
  EXPECT_EQ(interner.live(), 0u);
  EXPECT_EQ(interner.bytes(), 0u);

  // A still-referenced tail survives GC.
  ia::IntegratedAdvertisement kept = decode_fresh(make_ia(0, 7));
  interner.intern(kept);
  interner.gc();
  EXPECT_EQ(interner.live(), 1u);
  EXPECT_GT(interner.bytes(), 0u);
}

// -- Sharded churn under the thread pool (TSan/ASan surface) ------------------

core::DbgpConfig dbgp_as(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  config.max_batch = 256;
  return config;
}

// A sender whose originations carry real descriptor tails (Wiser path-cost
// plus island descriptors), so the receiver's descriptor interner has
// content to canonicalize. Both senders use identical module config, making
// their tails byte-identical — the cross-peer dedup case.
struct WiserSender {
  core::LookupService lookup;
  protocols::WiserCostExchange exchange{&lookup};
  core::DbgpSpeaker speaker;

  explicit WiserSender(bgp::AsNumber asn) : speaker(wiser_config(asn)) {
    speaker.add_module(std::make_unique<protocols::WiserModule>(
        protocols::WiserModule::Config{ia::IslandId::assigned(0xA), 5,
                                       net::Ipv4Address(203, 0, 113, 77)},
        &exchange));
    speaker.add_module(std::make_unique<protocols::BgpModule>());
    speaker.add_peer(1);
  }

  static core::DbgpConfig wiser_config(bgp::AsNumber asn) {
    core::DbgpConfig config = dbgp_as(asn);
    config.island = ia::IslandId::assigned(0xA);
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    return config;
  }
};

// Chaos-churn the parallel pipeline while the per-speaker interners run on
// the sequential commit path: announce from two upstreams, withdraw
// everything, repeat, then drain completely. Invariants: descriptor
// interning dedups across peers and prefixes, a fully drained speaker holds
// zero live canonical tails, and churn rounds return the arena to the
// post-first-round baseline (reuse, not growth).
TEST(RibInternerConcurrency, ShardedChurnDrainsToBaseline) {
  util::ThreadPool pool(4);
  core::DbgpSpeaker rx(dbgp_as(1));
  rx.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId from_a = rx.add_peer(900);
  const bgp::PeerId from_b = rx.add_peer(901);
  rx.add_peer(2);  // downstream, so withdraw planning emits
  rx.set_parallel(&pool, 8);

  WiserSender sender_a(900);
  WiserSender sender_b(901);

  constexpr std::uint32_t kPrefixes = 200;
  std::size_t arena_baseline = 0;
  for (int round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < kPrefixes; ++i) {
      rx.enqueue_frame(from_a, sender_a.speaker.originate(nth_prefix(i)).at(0).bytes());
      if (i % 2 == 0) {
        rx.enqueue_frame(from_b, sender_b.speaker.originate(nth_prefix(i)).at(0).bytes());
      }
    }
    rx.flush();
    ASSERT_EQ(rx.selected_prefixes().size(), kPrefixes);
    // Every advertisement carries the same descriptor section, so interning
    // collapses 300 received tails onto a handful of canonical arenas.
    const auto& stats = rx.descriptor_interner().stats();
    EXPECT_GT(stats.hits, stats.misses) << "round " << round;
    EXPECT_LE(rx.descriptor_interner().live(), 4u) << "round " << round;

    for (std::uint32_t i = 0; i < kPrefixes; ++i) {
      sender_a.speaker.withdraw_origin(nth_prefix(i));
      rx.enqueue_frame(from_a, core::DbgpSpeaker::encode_withdraw(nth_prefix(i)));
      if (i % 2 == 0) {
        sender_b.speaker.withdraw_origin(nth_prefix(i));
        rx.enqueue_frame(from_b, core::DbgpSpeaker::encode_withdraw(nth_prefix(i)));
      }
    }
    rx.flush();
    EXPECT_TRUE(rx.selected_prefixes().empty()) << "round " << round;
    // The encode-once frame cache may pin IA copies (bounded FIFO), so a
    // drained table holds at most the distinct-tail count — here 1 — never
    // O(announcements received).
    EXPECT_LE(rx.descriptor_interner().live(), 1u) << "round " << round;
    // Round 0 leaves persistent per-peer bookkeeping behind (adj-out peer
    // nodes); every later round must land exactly back on that footprint.
    if (round == 0) {
      arena_baseline = rx.rib_arena().bytes_in_use();
    } else {
      EXPECT_EQ(rx.rib_arena().bytes_in_use(), arena_baseline) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace dbgp
