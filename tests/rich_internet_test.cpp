// E9: the rich, evolvable Internet of Figures 6 & 7.
//
// Chain (origin -> source):  island D (Pathlet Routing, {21, 22}) ->
// AS 14 (BGP gulf) -> island F (SCION, {41}) -> island 11 (Wiser // MIRO)
// -> island G (Pathlet Routing, {61, 62}) -> island 8 (BGP).
//
// The IA island 8 receives for 131.4.0.0/24 must look like Figure 7: a
// path vector [G, 11, F, 14, D], Wiser's path cost + portal, MIRO's portal,
// SCION's within-island paths for F, and pathlet lists for both D and G.
#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/miro.h"
#include "protocols/pathlet.h"
#include "protocols/scion.h"
#include "protocols/wiser.h"
#include "simnet/network.h"

namespace dbgp {
namespace {

using namespace protocols;

class RichInternetTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kIslandDRaw = 0xD0;
  static constexpr std::uint32_t kIslandFRaw = 0xF0;
  static constexpr std::uint32_t kIslandGRaw = 0x60;

  void SetUp() override {
    island_d = ia::IslandId::assigned(kIslandDRaw);
    island_f = ia::IslandId::assigned(kIslandFRaw);
    island_g = ia::IslandId::assigned(kIslandGRaw);
    island_11 = ia::IslandId::from_as(11);

    // Island D: Pathlet Routing, members 21 & 22, abstracted at egress.
    store_d.add_local({1, {201, 202}, std::nullopt});
    store_d.add_local({5, {202, 204}, std::nullopt});
    store_d.add_local({9, {204}, dest});
    add_pathlet_as(21, island_d, {21, 22}, &store_d);
    add_pathlet_as(22, island_d, {21, 22}, &store_d);

    add_bgp_as(14);  // the gulf

    // Island F: SCION with two within-island paths.
    {
      core::DbgpConfig config = base_config(41);
      config.island = island_f;
      config.island_protocol = ia::kProtoScion;
      config.abstract_island = true;
      config.island_members = {41};
      config.active_protocol = ia::kProtoScion;
      auto& speaker = net.add_as(config);
      speaker.add_module(std::make_unique<ScionModule>(ScionModule::Config{
          island_f, {{{401, 409, 411, 407}}, {{401, 402, 403, 407}}}}));
      speaker.add_module(std::make_unique<BgpModule>());
    }

    // Island 11: Wiser in parallel with MIRO (singleton AS island).
    {
      core::DbgpConfig config = base_config(11);
      config.island = island_11;
      config.island_protocol = ia::kProtoWiser;
      config.active_protocol = ia::kProtoWiser;
      auto& speaker = net.add_as(config);
      speaker.add_module(std::make_unique<WiserModule>(
          WiserModule::Config{island_11, 75, net::Ipv4Address(154, 63, 23, 1)}, nullptr));
      speaker.add_module(std::make_unique<BgpModule>());
      miro_service = std::make_unique<MiroService>(&lookup, island_11,
                                                   net::Ipv4Address(154, 63, 23, 2),
                                                   net::Ipv4Address(154, 63, 23, 99));
      speaker.export_filters().add(
          "miro-portal",
          [this](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
            miro_service->attach_descriptor(ia);
            return true;
          });
    }

    // Island G: Pathlet Routing, members 61 & 62, with the inter-island
    // pathlet (gr10, dr1) of Figure 6.
    store_g.add_local({3, {601, 604}, std::nullopt});
    store_g.add_local({7, {603, 610}, std::nullopt});
    store_g.add_local({8, {610, 201}, std::nullopt});  // inter-island pathlet
    add_pathlet_as(61, island_g, {61, 62}, &store_g);
    add_pathlet_as(62, island_g, {61, 62}, &store_g);

    add_bgp_as(8);  // island 8: plain BGP source

    net.add_link(21, 22, /*same_island=*/true);
    net.add_link(22, 14);
    net.add_link(14, 41);
    net.add_link(41, 11);
    net.add_link(11, 61);
    net.add_link(61, 62, /*same_island=*/true);
    net.add_link(62, 8);

    net.originate(21, dest);
    net.run_to_convergence();
  }

  core::DbgpConfig base_config(bgp::AsNumber asn) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    return config;
  }

  void add_pathlet_as(bgp::AsNumber asn, ia::IslandId island,
                      std::vector<bgp::AsNumber> members, PathletStore* store) {
    core::DbgpConfig config = base_config(asn);
    config.island = island;
    config.island_protocol = ia::kProtoPathlets;
    config.abstract_island = true;
    config.island_members = std::move(members);
    config.active_protocol = ia::kProtoPathlets;
    auto& speaker = net.add_as(config);
    speaker.add_module(
        std::make_unique<PathletModule>(PathletModule::Config{island}, store));
    speaker.add_module(std::make_unique<BgpModule>());
  }

  void add_bgp_as(bgp::AsNumber asn) {
    net.add_as(base_config(asn)).add_module(std::make_unique<BgpModule>());
  }

  core::LookupService lookup;
  simnet::DbgpNetwork net{&lookup};
  const net::Prefix dest = *net::Prefix::parse("131.4.0.0/24");
  ia::IslandId island_d, island_f, island_g, island_11;
  PathletStore store_d, store_g;
  std::unique_ptr<MiroService> miro_service;
};

TEST_F(RichInternetTest, PathVectorMatchesFigure7) {
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  const auto& elements = best->ia.path_vector.elements();
  ASSERT_EQ(elements.size(), 5u) << best->ia.path_vector.to_string();
  EXPECT_EQ(elements[0].kind, ia::PathElement::Kind::kIsland);
  EXPECT_EQ(elements[0].island_id, island_g);
  EXPECT_EQ(elements[1].kind, ia::PathElement::Kind::kAs);
  EXPECT_EQ(elements[1].asn, 11u);
  EXPECT_EQ(elements[2].kind, ia::PathElement::Kind::kIsland);
  EXPECT_EQ(elements[2].island_id, island_f);
  EXPECT_EQ(elements[3].kind, ia::PathElement::Kind::kAs);
  EXPECT_EQ(elements[3].asn, 14u);  // the gulf AS, bare in the path vector
  EXPECT_EQ(elements[4].kind, ia::PathElement::Kind::kIsland);
  EXPECT_EQ(elements[4].island_id, island_d);
}

TEST_F(RichInternetTest, WiserCostAndPortalSurvive) {
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  const auto* cost =
      best->ia.find_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost);
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(decode_wiser_cost(cost->value), 75u);  // island 11's contribution
  const auto* portal = best->ia.find_island_descriptor(island_11, ia::kProtoWiser,
                                                       ia::keys::kWiserPortalAddr);
  ASSERT_NE(portal, nullptr);
  EXPECT_EQ(decode_wiser_portal(portal->value), net::Ipv4Address(154, 63, 23, 1));
}

TEST_F(RichInternetTest, MiroPortalSurvives) {
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  const auto found = MiroClient::discover(best->ia);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].island, island_11);
  EXPECT_EQ(found[0].portal_addr, net::Ipv4Address(154, 63, 23, 2));
}

TEST_F(RichInternetTest, ScionPathsSurvive) {
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  const auto paths = ScionModule::paths_offered(best->ia, island_f);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops, (std::vector<std::uint32_t>{401, 409, 411, 407}));
}

TEST_F(RichInternetTest, PathletListsForBothIslands) {
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  const auto* d_list = best->ia.find_island_descriptor(island_d, ia::kProtoPathlets,
                                                       ia::keys::kPathletList);
  ASSERT_NE(d_list, nullptr);
  EXPECT_EQ(decode_pathlets(d_list->value).size(), 3u);
  const auto* g_list = best->ia.find_island_descriptor(island_g, ia::kProtoPathlets,
                                                       ia::keys::kPathletList);
  ASSERT_NE(g_list, nullptr);
  const auto g_pathlets = decode_pathlets(g_list->value);
  EXPECT_EQ(g_pathlets.size(), 3u);
  // The inter-island pathlet (gr10 -> dr1) is among them.
  bool has_inter_island = false;
  for (const auto& p : g_pathlets) {
    has_inter_island |= p.vias == std::vector<std::uint32_t>{610, 201};
  }
  EXPECT_TRUE(has_inter_island);
}

TEST_F(RichInternetTest, MembershipsIdentifyProtocols) {
  // G-R4: what protocols are used on the path must be identifiable.
  const auto* best = net.speaker(8).best(dest);
  ASSERT_NE(best, nullptr);
  ASSERT_NE(best->ia.find_membership(island_d), nullptr);
  EXPECT_EQ(best->ia.find_membership(island_d)->protocol, ia::kProtoPathlets);
  ASSERT_NE(best->ia.find_membership(island_f), nullptr);
  EXPECT_EQ(best->ia.find_membership(island_f)->protocol, ia::kProtoScion);
  ASSERT_NE(best->ia.find_membership(island_11), nullptr);
  EXPECT_EQ(best->ia.find_membership(island_11)->protocol, ia::kProtoWiser);
  ASSERT_NE(best->ia.find_membership(island_g), nullptr);
  EXPECT_EQ(best->ia.find_membership(island_g)->protocol, ia::kProtoPathlets);

  const auto protocols = best->ia.protocols_on_path();
  EXPECT_TRUE(protocols.count(ia::kProtoBgp));
  EXPECT_TRUE(protocols.count(ia::kProtoWiser));
  EXPECT_TRUE(protocols.count(ia::kProtoMiro));
  EXPECT_TRUE(protocols.count(ia::kProtoScion));
  EXPECT_TRUE(protocols.count(ia::kProtoPathlets));
}

TEST_F(RichInternetTest, GulfAsSelectsByBaselineButForwardsEverything) {
  // AS 14 runs plain BGP yet its outgoing IA carried every protocol's
  // control information (checked above at AS 8); here confirm AS 14 itself
  // selected a route without any Wiser/SCION knowledge.
  const auto* at_gulf = net.speaker(14).best(dest);
  ASSERT_NE(at_gulf, nullptr);
  EXPECT_EQ(net.speaker(14).active_protocol_for(dest), ia::kProtoBgp);
}

}  // namespace
}  // namespace dbgp
