#include <gtest/gtest.h>

#include "scenario/parser.h"
#include "scenario/runner.h"

namespace dbgp::scenario {
namespace {

TEST(ScenarioParser, ParsesAllDirectives) {
  const std::string text = R"(
# comment line
as 1 island=A protocol=wiser cost=100 abstract members=1,2
as 2 bw=512 protocol=eq-bgp
pathlet 3 50 vias=101-102 delivers=10.0.0.0/8
scion-path 4 hops=1-2-3
link 1 2 same-island latency=0.5
originate 1 10.0.0.0/8   # trailing comment
strip 2 wiser
expect reachable 2 10.0.0.0/8
expect via 2 10.0.0.0/8 1
expect cost 2 10.0.0.0/8 100
expect pathlets 2 10.0.0.0/8 5
expect descriptor 2 10.0.0.0/8 scion
expect unreachable 2 11.0.0.0/8
)";
  const Scenario s = parse_scenario(text);
  ASSERT_EQ(s.ases.size(), 2u);
  EXPECT_EQ(s.ases[0].asn, 1u);
  EXPECT_EQ(s.ases[0].island, "A");
  EXPECT_EQ(s.ases[0].protocol, "wiser");
  EXPECT_EQ(s.ases[0].cost, 100u);
  EXPECT_TRUE(s.ases[0].abstract_island);
  EXPECT_EQ(s.ases[0].members, (std::vector<bgp::AsNumber>{1, 2}));
  EXPECT_EQ(s.ases[1].bandwidth, 512u);
  ASSERT_EQ(s.pathlets.size(), 1u);
  EXPECT_EQ(s.pathlets[0].fid, 50u);
  EXPECT_EQ(s.pathlets[0].vias, (std::vector<std::uint32_t>{101, 102}));
  ASSERT_TRUE(s.pathlets[0].delivers.has_value());
  ASSERT_EQ(s.scion_paths.size(), 1u);
  ASSERT_EQ(s.links.size(), 1u);
  EXPECT_TRUE(s.links[0].same_island);
  EXPECT_DOUBLE_EQ(s.links[0].latency, 0.5);
  ASSERT_EQ(s.originations.size(), 1u);
  ASSERT_EQ(s.strips.size(), 1u);
  ASSERT_EQ(s.expectations.size(), 6u);
  EXPECT_EQ(s.expectations[1].kind, Expectation::Kind::kVia);
  EXPECT_EQ(s.expectations[1].value, 1u);
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  try {
    parse_scenario("as 1\nbogus directive\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

class ScenarioParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioParserErrors, Rejected) {
  EXPECT_THROW(parse_scenario(GetParam()), std::runtime_error) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ScenarioParserErrors,
    ::testing::Values("as",                                // missing ASN
                      "as x",                              // not a number
                      "as 1 frobnicate=2",                 // unknown option
                      "link 1",                            // missing peer
                      "originate 1 not-a-prefix",          //
                      "pathlet 1 2",                       // missing vias
                      "expect sideways 1 10.0.0.0/8",      // unknown kind
                      "expect via 1 10.0.0.0/8",           // missing value
                      "scion-path 1 vias=1-2"));           // wrong key

TEST(ScenarioRunner, RunsFigure1Wiser) {
  // The Figure-1 scenario inline (mirrors scenarios/figure1_wiser.dbgp).
  const std::string text = R"(
as 1 island=A protocol=wiser cost=1
as 2 island=A protocol=wiser cost=100
as 3 island=A protocol=wiser cost=5
as 4
as 5
as 6
as 9 island=B protocol=wiser cost=1
link 1 2 same-island
link 1 3 same-island
link 2 4
link 4 9
link 3 5
link 5 6
link 6 9
originate 1 128.6.0.0/16
expect reachable 9 128.6.0.0/16
expect via 9 128.6.0.0/16 3
expect not-via 9 128.6.0.0/16 2
expect cost 9 128.6.0.0/16 6
expect descriptor 9 128.6.0.0/16 wiser
)";
  Runner runner;
  runner.build(parse_scenario(text));
  const auto result = runner.run();
  for (const auto& er : result.expectations) {
    EXPECT_TRUE(er.passed) << "line " << er.expectation.line << ": " << er.detail;
  }
  EXPECT_TRUE(result.all_passed());
  EXPECT_GT(result.events, 0u);
  // The table dump mentions the destination and the protocols.
  const std::string tables = runner.dump_tables();
  EXPECT_NE(tables.find("128.6.0.0/16"), std::string::npos);
  EXPECT_NE(tables.find("wiser"), std::string::npos);
}

TEST(ScenarioRunner, FailedExpectationIsReportedNotThrown) {
  const std::string text = R"(
as 1
as 2
link 1 2
originate 1 10.0.0.0/8
expect unreachable 2 10.0.0.0/8
)";
  Runner runner;
  runner.build(parse_scenario(text));
  const auto result = runner.run();
  ASSERT_EQ(result.expectations.size(), 1u);
  EXPECT_FALSE(result.expectations[0].passed);
  EXPECT_FALSE(result.all_passed());
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_NE(result.expectations[0].detail.find("route exists"), std::string::npos);
}

TEST(ScenarioRunner, RejectsPathletsAtNonPathletAs) {
  const std::string text = R"(
as 1
pathlet 1 5 vias=1-2
)";
  Runner runner;
  EXPECT_THROW(runner.build(parse_scenario(text)), std::runtime_error);
}

TEST(ScenarioRunner, UnknownProtocolRejected) {
  Runner runner;
  EXPECT_THROW(runner.build(parse_scenario("as 1 protocol=carrier-pigeon\n")),
               std::runtime_error);
}

TEST(ScenarioParser, ParsesSweepStanza) {
  const Scenario s = parse_scenario(
      "sweep extra-paths nodes=300 trials=5 seed=7 threads=4 cap=8 "
      "levels=0.1,0.5,1.0\n");
  ASSERT_TRUE(s.sweep.has_value());
  EXPECT_EQ(s.sweep->archetype, SweepDecl::Archetype::kExtraPaths);
  EXPECT_EQ(s.sweep->nodes, 300u);
  EXPECT_EQ(s.sweep->trials, 5u);
  EXPECT_EQ(s.sweep->seed, 7u);
  EXPECT_EQ(s.sweep->threads, 4u);
  EXPECT_EQ(s.sweep->path_cap, 8u);
  EXPECT_EQ(s.sweep->levels, (std::vector<double>{0.1, 0.5, 1.0}));
}

TEST(ScenarioParser, SweepDefaultsMatchThePaperSetup) {
  const Scenario s = parse_scenario("sweep bottleneck bw-min=16 bw-max=2048\n");
  ASSERT_TRUE(s.sweep.has_value());
  EXPECT_EQ(s.sweep->archetype, SweepDecl::Archetype::kBottleneck);
  EXPECT_EQ(s.sweep->nodes, 1000u);   // paper: 1,000-AS Waxman topology
  EXPECT_EQ(s.sweep->trials, 9u);     // paper: 9 trials
  EXPECT_EQ(s.sweep->threads, 1u);    // sequential unless asked
  EXPECT_EQ(s.sweep->bw_min, 16u);
  EXPECT_EQ(s.sweep->bw_max, 2048u);
  EXPECT_TRUE(s.sweep->levels.empty());  // runner fills in the deciles
}

TEST(ScenarioParser, SweepRejectsMalformedStanzas) {
  EXPECT_THROW(parse_scenario("sweep\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario("sweep sideways\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario("sweep extra-paths frobnicate=2\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("sweep extra-paths nodes=0\n"), std::runtime_error);
  EXPECT_THROW(parse_scenario("sweep extra-paths levels=0.5,1.5\n"),
               std::runtime_error);
  // One stanza per scenario, and sweeps don't mix with as/link topologies.
  EXPECT_THROW(parse_scenario("sweep extra-paths\nsweep bottleneck\n"),
               std::runtime_error);
  EXPECT_THROW(parse_scenario("as 1\nsweep extra-paths\n"), std::runtime_error);
}

TEST(ScenarioRunner, SweepConfigMapsDeclAndThreadsOverride) {
  const Scenario s = parse_scenario(
      "sweep extra-paths nodes=120 trials=2 seed=9 threads=2 levels=0.5\n");
  const auto config = to_sweep_config(*s.sweep);
  EXPECT_EQ(config.topology.nodes, 120u);
  EXPECT_EQ(config.trials, 2u);
  EXPECT_EQ(config.seed, 9u);
  EXPECT_EQ(config.threads, 2u);
  EXPECT_EQ(config.adoption_levels, (std::vector<double>{0.5}));
  // A --threads override (dbgp_run's flag) beats the stanza.
  EXPECT_EQ(to_sweep_config(*s.sweep, 8).threads, 8u);
}

TEST(ScenarioRunner, RunsSweepScenarioEndToEnd) {
  const Scenario s = parse_scenario(
      "sweep extra-paths nodes=80 trials=2 seed=42 threads=2 levels=0.3,0.7\n");
  const auto result = run_scenario_sweep(s);
  ASSERT_EQ(result.dbgp_baseline.size(), 2u);
  EXPECT_GE(result.best_case, result.status_quo);
  // And it must equal the sequential run bit-for-bit (the engine's contract).
  EXPECT_TRUE(sim::identical(result, run_scenario_sweep(s, 1)));
}

TEST(ScenarioRunner, SweeplessScenarioRejectsSweepRun) {
  EXPECT_THROW(run_scenario_sweep(parse_scenario("as 1\n")), std::runtime_error);
}

TEST(ScenarioRunner, ScionAndPathletScenarios) {
  const std::string text = R"(
as 1 island=RIGHT protocol=scion abstract members=1
as 4
as 5 island=LEFT protocol=scion
scion-path 1 hops=11-12-17
scion-path 1 hops=11-15-17
link 1 4
link 4 5
originate 1 131.2.0.0/24
expect reachable 5 131.2.0.0/24
expect descriptor 5 131.2.0.0/24 scion
)";
  Runner runner;
  runner.build(parse_scenario(text));
  EXPECT_TRUE(runner.run().all_passed());
}

}  // namespace
}  // namespace dbgp::scenario
