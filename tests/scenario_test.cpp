#include <gtest/gtest.h>

#include "scenario/parser.h"
#include "scenario/runner.h"

namespace dbgp::scenario {
namespace {

TEST(ScenarioParser, ParsesAllDirectives) {
  const std::string text = R"(
# comment line
as 1 island=A protocol=wiser cost=100 abstract members=1,2
as 2 bw=512 protocol=eq-bgp
pathlet 3 50 vias=101-102 delivers=10.0.0.0/8
scion-path 4 hops=1-2-3
link 1 2 same-island latency=0.5
originate 1 10.0.0.0/8   # trailing comment
strip 2 wiser
expect reachable 2 10.0.0.0/8
expect via 2 10.0.0.0/8 1
expect cost 2 10.0.0.0/8 100
expect pathlets 2 10.0.0.0/8 5
expect descriptor 2 10.0.0.0/8 scion
expect unreachable 2 11.0.0.0/8
)";
  const Scenario s = parse_scenario(text);
  ASSERT_EQ(s.ases.size(), 2u);
  EXPECT_EQ(s.ases[0].asn, 1u);
  EXPECT_EQ(s.ases[0].island, "A");
  EXPECT_EQ(s.ases[0].protocol, "wiser");
  EXPECT_EQ(s.ases[0].cost, 100u);
  EXPECT_TRUE(s.ases[0].abstract_island);
  EXPECT_EQ(s.ases[0].members, (std::vector<bgp::AsNumber>{1, 2}));
  EXPECT_EQ(s.ases[1].bandwidth, 512u);
  ASSERT_EQ(s.pathlets.size(), 1u);
  EXPECT_EQ(s.pathlets[0].fid, 50u);
  EXPECT_EQ(s.pathlets[0].vias, (std::vector<std::uint32_t>{101, 102}));
  ASSERT_TRUE(s.pathlets[0].delivers.has_value());
  ASSERT_EQ(s.scion_paths.size(), 1u);
  ASSERT_EQ(s.links.size(), 1u);
  EXPECT_TRUE(s.links[0].same_island);
  EXPECT_DOUBLE_EQ(s.links[0].latency, 0.5);
  ASSERT_EQ(s.originations.size(), 1u);
  ASSERT_EQ(s.strips.size(), 1u);
  ASSERT_EQ(s.expectations.size(), 6u);
  EXPECT_EQ(s.expectations[1].kind, Expectation::Kind::kVia);
  EXPECT_EQ(s.expectations[1].value, 1u);
}

TEST(ScenarioParser, ErrorsCarryLineNumbers) {
  try {
    parse_scenario("as 1\nbogus directive\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

class ScenarioParserErrors : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioParserErrors, Rejected) {
  EXPECT_THROW(parse_scenario(GetParam()), std::runtime_error) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ScenarioParserErrors,
    ::testing::Values("as",                                // missing ASN
                      "as x",                              // not a number
                      "as 1 frobnicate=2",                 // unknown option
                      "link 1",                            // missing peer
                      "originate 1 not-a-prefix",          //
                      "pathlet 1 2",                       // missing vias
                      "expect sideways 1 10.0.0.0/8",      // unknown kind
                      "expect via 1 10.0.0.0/8",           // missing value
                      "scion-path 1 vias=1-2"));           // wrong key

TEST(ScenarioRunner, RunsFigure1Wiser) {
  // The Figure-1 scenario inline (mirrors scenarios/figure1_wiser.dbgp).
  const std::string text = R"(
as 1 island=A protocol=wiser cost=1
as 2 island=A protocol=wiser cost=100
as 3 island=A protocol=wiser cost=5
as 4
as 5
as 6
as 9 island=B protocol=wiser cost=1
link 1 2 same-island
link 1 3 same-island
link 2 4
link 4 9
link 3 5
link 5 6
link 6 9
originate 1 128.6.0.0/16
expect reachable 9 128.6.0.0/16
expect via 9 128.6.0.0/16 3
expect not-via 9 128.6.0.0/16 2
expect cost 9 128.6.0.0/16 6
expect descriptor 9 128.6.0.0/16 wiser
)";
  Runner runner;
  runner.build(parse_scenario(text));
  const auto result = runner.run();
  for (const auto& er : result.expectations) {
    EXPECT_TRUE(er.passed) << "line " << er.expectation.line << ": " << er.detail;
  }
  EXPECT_TRUE(result.all_passed());
  EXPECT_GT(result.events, 0u);
  // The table dump mentions the destination and the protocols.
  const std::string tables = runner.dump_tables();
  EXPECT_NE(tables.find("128.6.0.0/16"), std::string::npos);
  EXPECT_NE(tables.find("wiser"), std::string::npos);
}

TEST(ScenarioRunner, FailedExpectationIsReportedNotThrown) {
  const std::string text = R"(
as 1
as 2
link 1 2
originate 1 10.0.0.0/8
expect unreachable 2 10.0.0.0/8
)";
  Runner runner;
  runner.build(parse_scenario(text));
  const auto result = runner.run();
  ASSERT_EQ(result.expectations.size(), 1u);
  EXPECT_FALSE(result.expectations[0].passed);
  EXPECT_FALSE(result.all_passed());
  EXPECT_EQ(result.failures(), 1u);
  EXPECT_NE(result.expectations[0].detail.find("route exists"), std::string::npos);
}

TEST(ScenarioRunner, RejectsPathletsAtNonPathletAs) {
  const std::string text = R"(
as 1
pathlet 1 5 vias=1-2
)";
  Runner runner;
  EXPECT_THROW(runner.build(parse_scenario(text)), std::runtime_error);
}

TEST(ScenarioRunner, UnknownProtocolRejected) {
  Runner runner;
  EXPECT_THROW(runner.build(parse_scenario("as 1 protocol=carrier-pigeon\n")),
               std::runtime_error);
}

TEST(ScenarioRunner, ScionAndPathletScenarios) {
  const std::string text = R"(
as 1 island=RIGHT protocol=scion abstract members=1
as 4
as 5 island=LEFT protocol=scion
scion-path 1 hops=11-12-17
scion-path 1 hops=11-15-17
link 1 4
link 4 5
originate 1 131.2.0.0/24
expect reachable 5 131.2.0.0/24
expect descriptor 5 131.2.0.0/24 scion
)";
  Runner runner;
  runner.build(parse_scenario(text));
  EXPECT_TRUE(runner.run().all_passed());
}

}  // namespace
}  // namespace dbgp::scenario
