#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/miro.h"
#include "protocols/scion.h"
#include "simnet/dataplane.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

const net::Prefix kDest = *net::Prefix::parse("131.2.0.0/24");

TEST(ScionCodec, PathsRoundTrip) {
  const std::vector<ScionPath> paths = {{{1, 9, 11, 7}}, {{1, 2, 3, 7}}};
  EXPECT_EQ(decode_scion_paths(encode_scion_paths(paths)), paths);
}

TEST(ScionCodec, HeaderRoundTrip) {
  ScionHeader header{{70, 50, 10, 1}};
  EXPECT_EQ(ScionHeader::decode(header.encode()), header);
}

TEST(ScionModule, PrefersMorePathsAtEqualLength) {
  ScionModule module({ia::IslandId::assigned(1), {}});
  core::IaRoute rich, poor;
  rich.ia.add_island_descriptor(ia::IslandId::assigned(2), ia::kProtoScion,
                                ia::keys::kScionPaths,
                                encode_scion_paths({{{1, 2}}, {{3, 4}}}));
  rich.ia.path_vector.prepend_as(1);
  rich.ia.path_vector.prepend_as(2);
  poor.ia.add_island_descriptor(ia::IslandId::assigned(2), ia::kProtoScion,
                                ia::keys::kScionPaths, encode_scion_paths({{{1, 2}}}));
  poor.ia.path_vector.prepend_as(1);
  poor.ia.path_vector.prepend_as(3);
  EXPECT_TRUE(module.better(rich, poor));  // equal length: more paths wins
  // A shorter route always beats a richer, longer one (convergence safety).
  core::IaRoute shorter;
  shorter.ia.path_vector.prepend_as(1);
  EXPECT_TRUE(module.better(shorter, rich));
}

TEST(ScionRedistribution, ExposesExactlyOnePath) {
  // Figure 3's baseline behaviour: BGP can carry only one of the paths.
  ScionRedistribution redist(5, net::Ipv4Address(5));
  ia::IntegratedAdvertisement ia;
  ia.destination = kDest;
  ia.path_vector.prepend_as(2);
  EXPECT_FALSE(redist.redistribute(kDest, ia).has_value());
  ia.add_island_descriptor(ia::IslandId::assigned(1), ia::kProtoScion,
                           ia::keys::kScionPaths, encode_scion_paths({{{1, 2}}, {{3, 4}}}));
  const auto attrs = redist.redistribute(kDest, ia);
  ASSERT_TRUE(attrs.has_value());
  // One BGP route regardless of how many SCION paths exist.
  EXPECT_TRUE(attrs->as_path.contains(5));
}

// Figure 3 under D-BGP: the rightmost SCION island exposes TWO within-island
// paths; they cross the BGP gulf in an island descriptor, so the SCION
// source island sees both.
TEST(ScionGulf, SourceSeesBothPaths) {
  const auto island_right = ia::IslandId::assigned(0xD);
  const auto island_left = ia::IslandId::assigned(0x5);
  simnet::DbgpNetwork net;

  const std::vector<ScionPath> exposed = {{{11, 12, 17}}, {{11, 15, 17}}};

  core::DbgpConfig right;
  right.asn = 1;
  right.next_hop = net::Ipv4Address(1);
  right.island = island_right;
  right.island_protocol = ia::kProtoScion;
  right.active_protocol = ia::kProtoScion;
  auto& right_speaker = net.add_as(right);
  right_speaker.add_module(std::make_unique<ScionModule>(
      ScionModule::Config{island_right, exposed}));

  core::DbgpConfig gulf;
  gulf.asn = 4;
  gulf.next_hop = net::Ipv4Address(4);
  net.add_as(gulf).add_module(std::make_unique<BgpModule>());

  core::DbgpConfig left;
  left.asn = 5;
  left.next_hop = net::Ipv4Address(5);
  left.island = island_left;
  left.island_protocol = ia::kProtoScion;
  left.active_protocol = ia::kProtoScion;
  auto& left_speaker = net.add_as(left);
  left_speaker.add_module(
      std::make_unique<ScionModule>(ScionModule::Config{island_left, {}}));

  net.add_link(1, 4);
  net.add_link(4, 5);
  net.originate(1, kDest);
  net.run_to_convergence();

  const auto* best = net.speaker(5).best(kDest);
  ASSERT_NE(best, nullptr);
  const auto paths = ScionModule::paths_offered(best->ia, island_right);
  ASSERT_EQ(paths.size(), 2u);  // BOTH paths survived the gulf
  EXPECT_EQ(paths[0].hops, (std::vector<std::uint32_t>{11, 12, 17}));

  // The source picks a path, encodes it in a SCION header, and wraps it in
  // an IPv4 header to cross the gulf (multi-network-protocol headers).
  const ScionHeader header{paths[1].hops};
  EXPECT_EQ(ScionHeader::decode(header.encode()), header);
}

// -- MIRO (Figure 2) -------------------------------------------------------------

TEST(MiroCodec, PortalRoundTrip) {
  const net::Ipv4Address portal(173, 82, 2, 0);
  EXPECT_EQ(decode_miro_portal(encode_miro_portal(portal)), portal);
}

TEST(MiroService, PublishDiscoverPurchase) {
  core::LookupService lookup;
  const auto island_m = ia::IslandId::assigned(0xE1);
  MiroService service(&lookup, island_m, net::Ipv4Address(173, 82, 2, 0),
                      net::Ipv4Address(173, 82, 2, 99));

  MiroOffer offer;
  offer.offer_id = 7;
  offer.path.prepend_as(31);
  offer.path.prepend_as(30);
  offer.price = 250;
  service.publish_offers(kDest, {offer});

  // Discovery: island M stamps its portal into an IA; a remote island reads
  // it after pass-through.
  ia::IntegratedAdvertisement ia;
  ia.destination = kDest;
  service.attach_descriptor(ia);
  const auto found = MiroClient::discover(ia);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].island, island_m);
  EXPECT_EQ(found[0].portal_addr, net::Ipv4Address(173, 82, 2, 0));

  MiroClient client(&lookup);
  const auto offers = client.fetch_offers(island_m, kDest);
  ASSERT_EQ(offers.size(), 1u);
  EXPECT_EQ(offers[0].price, 250u);

  // Underpayment is refused; fair payment grants the tunnel endpoint.
  EXPECT_FALSE(service.handle_purchase(kDest, 7, 100).has_value());
  const auto grant = service.handle_purchase(kDest, 7, 250);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->tunnel_endpoint, net::Ipv4Address(173, 82, 2, 99));
  EXPECT_EQ(service.revenue(), 250u);
  EXPECT_FALSE(service.handle_purchase(kDest, 99, 250).has_value());  // no such offer
}

// Off-path discovery end-to-end (Figure 2): T cannot discover M under BGP;
// under D-BGP the portal descriptor rides M's own prefix advertisement
// through the gulf, then negotiation and tunneling happen out-of-band.
TEST(MiroGulf, OffPathDiscoveryAndTunnel) {
  core::LookupService lookup;
  simnet::DbgpNetwork net(&lookup);
  const auto island_m = ia::IslandId::assigned(0xE);
  const net::Prefix miro_prefix = *net::Prefix::parse("173.82.2.0/24");

  MiroService service(&lookup, island_m, net::Ipv4Address(173, 82, 2, 0),
                      net::Ipv4Address(173, 82, 2, 99));

  // M = AS 30 (MIRO island), gulf = AS 20, T = AS 10.
  core::DbgpConfig m_config;
  m_config.asn = 30;
  m_config.next_hop = net::Ipv4Address(30);
  m_config.island = island_m;
  m_config.island_protocol = ia::kProtoMiro;
  auto& m_speaker = net.add_as(m_config);
  m_speaker.add_module(std::make_unique<BgpModule>());
  // MIRO runs in parallel with BGP: the island stamps its portal descriptor
  // on everything it exports.
  m_speaker.export_filters().add(
      "miro-portal", [&service](ia::IntegratedAdvertisement& ia, const core::FilterContext&) {
        service.attach_descriptor(ia);
        return true;
      });

  for (bgp::AsNumber asn : {20, 10}) {
    core::DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    net.add_as(config).add_module(std::make_unique<BgpModule>());
  }
  net.add_link(30, 20);
  net.add_link(20, 10);
  net.originate(30, miro_prefix);
  net.run_to_convergence();

  // T discovers the service from the IA that crossed the gulf.
  const auto* at_t = net.speaker(10).best(miro_prefix);
  ASSERT_NE(at_t, nullptr);
  const auto found = MiroClient::discover(at_t->ia);
  ASSERT_EQ(found.size(), 1u);

  // T purchases an alternate path toward kDest.
  MiroOffer offer;
  offer.offer_id = 1;
  offer.path.prepend_as(31);
  offer.price = 10;
  service.publish_offers(kDest, {offer});
  MiroClient client(&lookup);
  ASSERT_EQ(client.fetch_offers(found[0].island, kDest).size(), 1u);
  const auto grant = service.handle_purchase(kDest, 1, 10);
  ASSERT_TRUE(grant.has_value());

  // T tunnels traffic to the granted endpoint; the inner header is the true
  // destination — the gulf routes only on the outer (tunnel) header.
  simnet::DataPlane dataplane;
  dataplane.set_next_hop(10, miro_prefix, 20);
  dataplane.set_next_hop(20, miro_prefix, 30);
  dataplane.set_local_delivery(30, miro_prefix);
  dataplane.set_address_owner(grant->tunnel_endpoint, 30);
  dataplane.set_next_hop(30, kDest, 31);  // M forwards over the sold path
  dataplane.set_local_delivery(31, kDest);
  dataplane.add_link(30, 31);

  simnet::Packet packet;
  packet.stack.push_back(simnet::Header::ipv4(net::Ipv4Address(131, 2, 0, 1)));
  packet.stack.push_back(simnet::Header::tunnel(grant->tunnel_endpoint));
  const auto trace = dataplane.forward(10, packet);
  EXPECT_TRUE(trace.delivered) << trace.drop_reason;
  EXPECT_EQ(trace.hops, (std::vector<bgp::AsNumber>{10, 20, 30, 31}));
}

}  // namespace
}  // namespace dbgp::protocols
