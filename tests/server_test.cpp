// Route-server daemon suite (ctest -L server): live reconfiguration,
// snapshot/restore bit-identity, graceful restart, the control API, and the
// divergence watchdog.
//
// The load-bearing invariant throughout: a daemon restored from a snapshot
// is indistinguishable from the daemon that lived through the events — same
// Loc-RIB bytes immediately after restore, and same Loc-RIB bytes after any
// shared sequence of further commands (the snapshot carries adj-out and the
// arrival-sequence counter precisely so future tie-breaks cannot diverge).
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ia/descriptors.h"
#include "ia/ids.h"
#include "scenario/parser.h"
#include "server/control.h"
#include "server/daemon.h"
#include "server/snapshot.h"
#include "telemetry/divergence.h"

namespace dbgp {
namespace {

using server::ControlApi;
using server::RouteServer;
using server::Snapshot;

// A chain with unique best paths everywhere, so Loc-RIB contents are
// independent of arrival order and safe to compare across daemons with
// different histories.
constexpr const char* kChain = R"(
as 1
as 2
as 3
link 1 2
link 2 3
originate 1 10.1.0.0/16
originate 3 10.3.0.0/16
)";

constexpr const char* kWiserIsland = R"(
as 10 island=west protocol=wiser cost=2
as 11 island=west protocol=wiser cost=3
as 20
as 30 island=east protocol=wiser cost=1
link 10 11 same-island
link 11 20
link 20 30
originate 10 172.16.0.0/16
originate 30 172.30.0.0/16
)";

// Loads in place: the network wires pointers back into the server's own
// members, so a RouteServer must never be moved after load().
void boot(RouteServer& server, const std::string& text) {
  server.load(scenario::parse_scenario(text));
  server.run();
}

std::vector<std::uint64_t> rib_hashes(const RouteServer& server) {
  std::vector<std::uint64_t> out;
  for (const auto asn : server.as_numbers()) out.push_back(server.loc_rib_hash(asn));
  return out;
}

// -- Snapshot codec ----------------------------------------------------------

TEST(SnapshotCodec, RoundTripIsByteStable) {
  RouteServer server;
  boot(server, kWiserIsland);
  const Snapshot snap = server.snapshot();
  const auto bytes = server::encode_snapshot(snap);
  const Snapshot decoded = server::decode_snapshot(bytes);
  EXPECT_EQ(server::encode_snapshot(decoded), bytes);
  EXPECT_EQ(decoded.nodes.size(), 4u);
  EXPECT_EQ(decoded.links.size(), 3u);
  EXPECT_DOUBLE_EQ(decoded.sim_time, snap.sim_time);
}

TEST(SnapshotCodec, RejectsTruncation) {
  RouteServer server;
  boot(server, kChain);
  const auto bytes = server::encode_snapshot(server.snapshot());
  for (const std::size_t keep : {std::size_t{0}, std::size_t{5}, bytes.size() / 2,
                                 bytes.size() - 1}) {
    EXPECT_THROW(server::decode_snapshot(std::span(bytes.data(), keep)),
                 server::SnapshotError)
        << "accepted a " << keep << "-byte prefix";
  }
}

TEST(SnapshotCodec, RejectsBitFlips) {
  RouteServer server;
  boot(server, kChain);
  auto bytes = server::encode_snapshot(server.snapshot());
  // Flip one bit in each region: header, node table, trailing checksum.
  for (const std::size_t at : {std::size_t{2}, bytes.size() / 2, bytes.size() - 3}) {
    auto corrupted = bytes;
    corrupted[at] ^= 0x40;
    EXPECT_THROW(server::decode_snapshot(corrupted), server::SnapshotError)
        << "accepted a flip at offset " << at;
  }
}

TEST(SnapshotCodec, RejectsForeignFile) {
  const std::vector<std::uint8_t> garbage(64, 0xAB);
  EXPECT_THROW(server::decode_snapshot(garbage), server::SnapshotError);
}

// -- Snapshot / restore bit-identity ----------------------------------------

TEST(SnapshotRestore, LocRibBitIdentical) {
  RouteServer lived;
  boot(lived, kWiserIsland);
  const Snapshot snap = lived.snapshot();

  RouteServer restored;
  restored.restore(snap);
  EXPECT_EQ(restored.as_numbers(), lived.as_numbers());
  EXPECT_EQ(rib_hashes(restored), rib_hashes(lived));
  EXPECT_DOUBLE_EQ(restored.now(), lived.now());
}

TEST(SnapshotRestore, LocRibBitIdenticalAcrossChaosSeeds) {
  for (const int seed : {1, 7}) {
    const std::string text = std::string(kWiserIsland) +
                             "chaos seed=" + std::to_string(seed) +
                             " horizon=1.0 flap-fraction=0.5 loss=0.05\n";
    RouteServer lived;
    boot(lived, text);
    const Snapshot snap = lived.snapshot();
    RouteServer restored;
    restored.restore(snap);
    EXPECT_EQ(rib_hashes(restored), rib_hashes(lived)) << "seed " << seed;

    // Same seed, fresh run: the lived-through hash itself must replay
    // bit-identically, so the equality above is not vacuous.
    RouteServer replay;
    boot(replay, text);
    EXPECT_EQ(rib_hashes(replay), rib_hashes(lived)) << "seed " << seed;
  }
}

TEST(SnapshotRestore, FutureBehaviorMatchesLivedThroughDaemon) {
  RouteServer lived;
  boot(lived, kWiserIsland);
  const Snapshot snap = lived.snapshot();
  RouteServer restored;
  restored.restore(snap);

  // Drive both daemons through the same post-snapshot timeline: new
  // origination, a link flap via remove/add-peer, a policy reload.
  const auto drive = [](RouteServer& s) {
    s.originate(20, *net::Prefix::parse("192.168.0.0/16"));
    s.run();
    s.add_peer(20, 40);
    s.originate(40, *net::Prefix::parse("10.40.0.0/16"));
    s.run();
    s.reload_policy(20, {"wiser"});
    s.run();
  };
  drive(lived);
  drive(restored);
  EXPECT_EQ(rib_hashes(restored), rib_hashes(lived));
}

TEST(SnapshotRestore, FileRoundTripAndRestoreRequiresFreshServer) {
  RouteServer server;
  boot(server, kChain);
  const Snapshot snap = server.snapshot();
  const std::string path = testing::TempDir() + "/dbgp_server_test.snap";
  server::save_snapshot(snap, path);
  const Snapshot loaded = server::load_snapshot(path);
  EXPECT_EQ(server::encode_snapshot(loaded), server::encode_snapshot(snap));

  EXPECT_THROW(server.restore(loaded), std::runtime_error);  // not empty
  EXPECT_THROW(server::load_snapshot(path + ".missing"), server::SnapshotError);
}

// -- Runtime reconfiguration -------------------------------------------------

TEST(Reconfigure, AddPeerConvergesToFromScratchRib) {
  RouteServer runtime;
  boot(runtime, kChain);
  runtime.add_peer(3, 4);
  runtime.originate(4, *net::Prefix::parse("10.4.0.0/16"));
  runtime.run();

  RouteServer scratch;
  boot(scratch, std::string(kChain) +
                                    "as 4\nlink 3 4\noriginate 4 10.4.0.0/16\n");
  EXPECT_EQ(runtime.as_numbers(), scratch.as_numbers());
  EXPECT_EQ(rib_hashes(runtime), rib_hashes(scratch));
}

TEST(Reconfigure, RemovePeerPurgesAndRetires) {
  RouteServer server;
  boot(server, kChain);
  ASSERT_NE(server.network().speaker(1).best(*net::Prefix::parse("10.3.0.0/16")),
            nullptr);
  server.remove_peer(3);
  server.run();
  EXPECT_EQ(server.network().speaker(1).best(*net::Prefix::parse("10.3.0.0/16")),
            nullptr);
  EXPECT_FALSE(server.has_as(3));
  scenario::AsDecl reuse;
  reuse.asn = 3;
  EXPECT_THROW(server.add_as(reuse), std::runtime_error);

  // The from-scratch equivalent (a chain that never had AS 3).
  RouteServer scratch;
  boot(scratch, "as 1\nas 2\nlink 1 2\noriginate 1 10.1.0.0/16\n");
  EXPECT_EQ(server.as_numbers(), scratch.as_numbers());
  EXPECT_EQ(rib_hashes(server), rib_hashes(scratch));
}

TEST(Reconfigure, ReloadPolicyStripsAndUnstripsLive) {
  RouteServer server;
  boot(server, kWiserIsland);
  const auto prefix = *net::Prefix::parse("172.30.0.0/16");
  // Probe the wiser cost path-descriptor specifically: strip filters remove
  // descriptors but deliberately keep island-membership records (those are
  // baseline reachability metadata), so protocols_on_path() would still
  // report wiser.
  const auto has_wiser = [&](bgp::AsNumber asn) {
    const auto* best = server.network().speaker(asn).best(prefix);
    return best != nullptr && best->ia.find_path_descriptor(
                                  ia::kProtoWiser, ia::keys::kWiserPathCost) != nullptr;
  };
  ASSERT_TRUE(has_wiser(11));

  server.reload_policy(11, {"wiser"});
  server.run();
  EXPECT_TRUE(server.network().speaker(11).best(prefix) != nullptr);
  EXPECT_FALSE(has_wiser(11));

  server.reload_policy(11, {});
  server.run();
  EXPECT_TRUE(has_wiser(11));
}

TEST(Reconfigure, RollingUpgradeActivatesProtocol) {
  RouteServer server;
  boot(server, kChain);
  server.upgrade_protocol(2, "wiser");
  server.run();
  const auto* best = server.network().speaker(3).best(*net::Prefix::parse("10.1.0.0/16"));
  ASSERT_NE(best, nullptr);
  bool wiser_on_path = false;
  for (const auto p : best->ia.protocols_on_path()) {
    wiser_on_path |= p == ia::kProtoWiser;
  }
  EXPECT_TRUE(wiser_on_path) << "upgraded AS 2 should stamp wiser descriptors";
}

// -- Graceful restart --------------------------------------------------------

TEST(GracefulRestart, HoldsRoutesAndMatchesColdFinalState) {
  const auto learned = *net::Prefix::parse("10.1.0.0/16");
  const auto originated = *net::Prefix::parse("10.3.0.0/16");
  RouteServer warm;
  boot(warm, kChain);
  warm.graceful_restart(3);
  // Before any re-convergence the warm node already holds its checkpointed
  // routes — the whole point versus a cold restart's re-learn from zero.
  EXPECT_NE(warm.network().speaker(3).best(learned), nullptr);
  warm.run();
  // And the network never saw the prefix disappear.
  EXPECT_NE(warm.network().speaker(1).best(originated), nullptr);

  RouteServer cold;
  boot(cold, kChain);
  cold.crash(3);
  EXPECT_FALSE(cold.network().node_up(3));
  cold.run();
  // The cold path's visible outage: neighbors withdrew the dead node's
  // prefix while it was down.
  EXPECT_EQ(cold.network().speaker(1).best(originated), nullptr);
  cold.restart(3);
  cold.run();

  EXPECT_EQ(rib_hashes(warm), rib_hashes(cold));
}

TEST(GracefulRestart, WarmRestartWithoutCheckpointFails) {
  RouteServer server;
  boot(server, kChain);
  EXPECT_THROW(server.restart_warm(2), std::runtime_error);
}

// -- Control API -------------------------------------------------------------

TEST(Control, ScriptedSessionWithHundredPeersSnapshotUpgradeRestore) {
  // The chaos stanza below genuinely flips routes — with the default
  // threshold (8) some leaves sit exactly at the flag line while the window
  // is still young. Raise it: this test is about snapshot/upgrade/restore
  // equality; watchdog semantics live in the Divergence tests.
  RouteServer::Options options;
  options.divergence_threshold = 64;
  RouteServer lived(options);
  ControlApi api(lived);
  ASSERT_TRUE(api.execute("add-as 1 island=core protocol=wiser cost=2").ok);
  ASSERT_TRUE(api.execute("originate 1 10.0.0.0/8").ok);
  // 120 runtime peerings in a two-level hub: ASes 100..219 hang off eight
  // aggregation ASes that peer with the hub.
  for (int agg = 2; agg <= 9; ++agg) {
    ASSERT_TRUE(api.execute("add-peer 1 " + std::to_string(agg)).ok);
  }
  for (int leaf = 0; leaf < 112; ++leaf) {
    const int asn = 100 + leaf;
    const int agg = 2 + leaf % 8;
    ASSERT_TRUE(api.execute("add-peer " + std::to_string(agg) + " " +
                            std::to_string(asn))
                    .ok)
        << "peer " << asn;
  }
  ASSERT_TRUE(api.execute("originate 100 10.100.0.0/16").ok);
  ASSERT_TRUE(api.execute("run").ok);
  EXPECT_GE(lived.as_numbers().size(), 100u);

  // Hot policy reload plus a mid-churn snapshot: chaos scheduled, some of it
  // drained, snapshot taken (which drains the rest to a consistent cut).
  ASSERT_TRUE(api.execute("reload-policy 2 strip=wiser").ok);
  ASSERT_TRUE(api.execute("set-chaos flaky seed=5 horizon=0.5").ok);
  ASSERT_TRUE(api.execute("step 0.2").ok);
  const std::string path = testing::TempDir() + "/dbgp_control_test.snap";
  ASSERT_TRUE(api.execute("snapshot " + path).ok);

  // Rolling protocol upgrade across the aggregation layer, live.
  for (int agg = 3; agg <= 9; ++agg) {
    ASSERT_TRUE(api.execute("upgrade-protocol " + std::to_string(agg) + " wiser").ok);
  }
  ASSERT_TRUE(api.execute("run").ok);
  const auto health = api.execute("health");
  ASSERT_TRUE(health.ok);
  EXPECT_NE(health.text.find("oscillating=0"), std::string::npos) << health.text;

  // A daemon restored from the mid-churn snapshot and driven through the
  // same remaining commands reaches a bit-identical Loc-RIB.
  RouteServer restored;
  ControlApi restored_api(restored);
  ASSERT_TRUE(restored_api.execute("restore " + path).ok);
  for (int agg = 3; agg <= 9; ++agg) {
    ASSERT_TRUE(
        restored_api.execute("upgrade-protocol " + std::to_string(agg) + " wiser").ok);
  }
  ASSERT_TRUE(restored_api.execute("run").ok);
  EXPECT_EQ(rib_hashes(restored), rib_hashes(lived));
}

TEST(Control, QueryVerbs) {
  RouteServer server;
  boot(server, kChain);
  ControlApi api(server);

  const auto rib = api.execute("rib 2");
  ASSERT_TRUE(rib.ok);
  EXPECT_NE(rib.text.find("10.1.0.0/16"), std::string::npos);
  EXPECT_NE(rib.text.find("10.3.0.0/16"), std::string::npos);

  const auto one = api.execute("rib 2 10.1.0.0/16");
  ASSERT_TRUE(one.ok);
  EXPECT_NE(one.text.find("via [1]"), std::string::npos);

  const auto why = api.execute("why 3 10.1.0.0/16");
  ASSERT_TRUE(why.ok) << why.text;
  EXPECT_NE(why.text.find("originate"), std::string::npos);

  const auto metrics = api.execute("metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.text.find("server.commands"), std::string::npos);

  // `metrics deltas` reports per-interval counter movement: after two calls
  // with no traffic in between, the server.snapshots delta must be 0.
  (void)api.execute("metrics deltas");
  const auto deltas = api.execute("metrics deltas");
  ASSERT_TRUE(deltas.ok);
  EXPECT_NE(deltas.text.find("counter server.snapshots 0 (total"), std::string::npos)
      << deltas.text;
}

TEST(Control, ErrorsAreErrResultsNotThrows) {
  RouteServer server;
  boot(server, kChain);
  ControlApi api(server);
  EXPECT_FALSE(api.execute("frobnicate").ok);
  EXPECT_FALSE(api.execute("rib 99").ok);
  EXPECT_FALSE(api.execute("add-peer 1").ok);          // usage
  EXPECT_FALSE(api.execute("originate 1 banana").ok);  // bad prefix
  EXPECT_FALSE(api.execute("upgrade-protocol 1 nope").ok);
  EXPECT_FALSE(api.execute("restore /nonexistent/x.snap").ok);
  EXPECT_TRUE(api.execute("").ok);        // blank line
  EXPECT_TRUE(api.execute("# note").ok);  // comment
  EXPECT_TRUE(api.execute("quit").quit);
}

// -- Scenario `server` stanza ------------------------------------------------

TEST(ServerStanza, ParsesTimelineInOrder) {
  const auto scenario = scenario::parse_scenario(
      "as 1\nas 2\nlink 1 2\noriginate 1 10.0.0.0/8\n"
      "server 0.5 add-peer 2 3\nserver 1.0 upgrade-protocol 2 wiser\n");
  ASSERT_EQ(scenario.server_commands.size(), 2u);
  EXPECT_DOUBLE_EQ(scenario.server_commands[0].at, 0.5);
  EXPECT_EQ(scenario.server_commands[0].command, "add-peer 2 3");
  EXPECT_EQ(scenario.server_commands[1].command, "upgrade-protocol 2 wiser");
}

TEST(ServerStanza, RejectsBackwardsTimeAndSweepCombination) {
  EXPECT_THROW(scenario::parse_scenario("server 1.0 run\nserver 0.5 run\n"),
               std::runtime_error);
  EXPECT_THROW(scenario::parse_scenario("server 0.5\n"), std::runtime_error);
  EXPECT_THROW(
      scenario::parse_scenario("sweep extra-paths nodes=10\nserver 0.5 run\n"),
      std::runtime_error);
}

// -- Divergence watchdog -----------------------------------------------------

telemetry::DecisionAudit flip(std::uint32_t as, const std::string& prefix, double t,
                              bool changed = true) {
  telemetry::DecisionAudit audit;
  audit.as = as;
  audit.prefix = prefix;
  audit.time = t;
  audit.changed = changed;
  return audit;
}

TEST(Divergence, FlagsOscillatingPrefixInsideWindow) {
  telemetry::OscillationDetector detector({/*window=*/5.0, /*threshold=*/8});
  for (int i = 0; i < 9; ++i) detector.observe(flip(1, "10.0.0.0/8", 0.1 * i));
  EXPECT_EQ(detector.oscillating(), 1u);
  const auto report = detector.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].first, "AS1 10.0.0.0/8");
  EXPECT_GE(report[0].second, 8u);
}

TEST(Divergence, WindowSlidesAndUnchangedAuditsAgeItOut) {
  telemetry::OscillationDetector detector({5.0, 8});
  for (int i = 0; i < 9; ++i) detector.observe(flip(1, "10.0.0.0/8", 0.1 * i));
  ASSERT_EQ(detector.oscillating(), 1u);
  // A quiet stretch (audits with no RIB change) moves the clock; the old
  // flips fall out of the trailing window.
  detector.observe(flip(2, "10.9.0.0/16", 30.0, /*changed=*/false));
  EXPECT_EQ(detector.oscillating(), 0u);
}

TEST(Divergence, StableNetworkNeverFlags) {
  RouteServer server;
  boot(server, kWiserIsland);
  server.poll_divergence();
  EXPECT_EQ(server.divergence().oscillating(), 0u);
}

}  // namespace
}  // namespace dbgp
