// Sharded-pipeline tests: the DESIGN.md §13 determinism contract for the
// speaker's parallel batch path. The plan/commit split promises that emitted
// frames, RIB contents, stats, traces, and audits are bit-identical at every
// thread count and shard count — these tests compare the parallel pipeline
// against the sequential path output-for-output, byte-for-byte. Part of the
// `dbgp_concurrency_tests` binary (ctest -L concurrency) so the
// dbgp_tsan_check target re-runs exactly this surface under ThreadSanitizer
// and dbgp_asan_check under AddressSanitizer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/speaker.h"
#include "ia/frame_cache.h"
#include "protocols/bgp_module.h"
#include "simnet/chaos.h"
#include "simnet/network.h"
#include "telemetry/causal.h"
#include "telemetry/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dbgp {
namespace {

core::DbgpConfig bgp_as(bgp::AsNumber asn, std::size_t max_batch = 256) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  config.max_batch = max_batch;
  return config;
}

net::Prefix nth_prefix(std::uint32_t i) {
  return net::Prefix(net::Ipv4Address((10u << 24) | (i << 8)), 24);
}

// A frame as fed to (or emitted by) a speaker, with the bytes flattened so
// equality is literal byte equality.
struct WireFrame {
  bgp::PeerId peer = bgp::kInvalidPeer;
  std::vector<std::uint8_t> bytes;

  bool operator==(const WireFrame&) const = default;
};

// Synthesizes a realistic update stream: every prefix announced by AS900,
// a third of them also announced by AS901 (route choice at the receiver),
// a third withdrawn, and a tail of re-announcements — enough churn that
// batching coalesces, decisions flip, and withdraw planning runs.
std::vector<WireFrame> make_stream(std::uint32_t prefixes) {
  core::DbgpSpeaker sender_a(bgp_as(900));
  core::DbgpSpeaker sender_b(bgp_as(901));
  sender_a.add_module(std::make_unique<protocols::BgpModule>());
  sender_b.add_module(std::make_unique<protocols::BgpModule>());
  sender_a.add_peer(1);
  sender_b.add_peer(1);

  // peer ids are assigned by the *receiver*; the stream records which
  // upstream session each frame arrives on.
  std::vector<WireFrame> stream;
  for (std::uint32_t i = 0; i < prefixes; ++i) {
    auto out = sender_a.originate(nth_prefix(i));
    stream.push_back({0, out.at(0).bytes()});
  }
  for (std::uint32_t i = 0; i < prefixes; i += 3) {
    auto out = sender_b.originate(nth_prefix(i));
    stream.push_back({1, out.at(0).bytes()});
  }
  for (std::uint32_t i = 1; i < prefixes; i += 3) {
    stream.push_back({0, core::DbgpSpeaker::encode_withdraw(nth_prefix(i))});
  }
  // Re-announce a slice of the withdrawn prefixes (fresh IA bytes, so the
  // receiver's adj-in flips back) — coalescing must land on the final state.
  for (std::uint32_t i = 1; i < prefixes; i += 6) {
    sender_a.withdraw_origin(nth_prefix(i));
    auto out = sender_a.originate(nth_prefix(i));
    stream.push_back({0, out.at(0).bytes()});
  }
  return stream;
}

// Everything the pipeline can observably produce, captured for comparison.
struct RunResult {
  std::vector<WireFrame> emitted;  // (peer, bytes) in emission order
  std::vector<net::Prefix> selected;
  std::vector<std::string> paths;  // best path per selected prefix
  core::DbgpStats stats;
  std::uint64_t deferred_rejects = 0;
  std::uint64_t eager_rejects = 0;

  bool same_routes(const RunResult& other) const {
    return selected == other.selected && paths == other.paths;
  }
  bool same_stats(const RunResult& other) const {
    return stats.ias_received == other.stats.ias_received &&
           stats.ias_sent == other.stats.ias_sent &&
           stats.withdraws_received == other.stats.withdraws_received &&
           stats.withdraws_sent == other.stats.withdraws_sent &&
           stats.dropped_by_global_filter == other.stats.dropped_by_global_filter &&
           stats.rejected_by_module == other.stats.rejected_by_module &&
           stats.bytes_sent == other.stats.bytes_sent &&
           stats.bytes_received == other.stats.bytes_received;
  }
};

// Feeds `stream` into a fresh receiver attached to a `threads`-wide pool and
// captures everything it emits. `shared_frames` selects the refcounted
// enqueue overload (the deferred-decode path when max_batch == 0 and the
// pool is wide); undecodable frames are counted, never fatal.
RunResult run_receiver(const std::vector<WireFrame>& stream, std::size_t threads,
                       std::size_t shards = 0, std::size_t max_batch = 256,
                       bool shared_frames = false) {
  util::ThreadPool pool(threads);
  core::DbgpSpeaker rx(bgp_as(1, max_batch));
  rx.add_module(std::make_unique<protocols::BgpModule>());
  const bgp::PeerId from_a = rx.add_peer(900);
  const bgp::PeerId from_b = rx.add_peer(901);
  for (bgp::AsNumber down = 2; down <= 4; ++down) rx.add_peer(down);
  rx.set_parallel(&pool, shards);

  RunResult result;
  auto absorb = [&](std::vector<core::DbgpOutgoing> out) {
    for (auto& frame : out) result.emitted.push_back({frame.peer, frame.bytes()});
  };
  for (const WireFrame& frame : stream) {
    const bgp::PeerId from = frame.peer == 0 ? from_a : from_b;
    try {
      if (shared_frames) {
        absorb(rx.enqueue_frame(from, ia::make_shared_frame(frame.bytes)));
      } else {
        absorb(rx.enqueue_frame(from, frame.bytes));
      }
    } catch (const util::DecodeError&) {
      ++result.eager_rejects;
    }
  }
  absorb(rx.flush());
  result.deferred_rejects = rx.take_deferred_rejects();

  result.selected = rx.selected_prefixes();
  for (const auto& prefix : result.selected) {
    const auto* best = rx.best(prefix);
    result.paths.push_back(best == nullptr ? "?" : best->ia.path_vector.to_string());
  }
  result.stats = rx.stats();
  return result;
}

// -- Speaker-level bit-identity ----------------------------------------------

TEST(ShardPipeline, ThreadCountBitIdentity) {
  const auto stream = make_stream(300);
  const RunResult baseline = run_receiver(stream, 1);
  ASSERT_FALSE(baseline.emitted.empty());
  ASSERT_FALSE(baseline.selected.empty());
  for (const std::size_t threads : {2ul, 8ul}) {
    const RunResult parallel = run_receiver(stream, threads);
    EXPECT_EQ(baseline.emitted, parallel.emitted) << threads << " threads";
    EXPECT_TRUE(baseline.same_routes(parallel)) << threads << " threads";
    EXPECT_TRUE(baseline.same_stats(parallel)) << threads << " threads";
  }
}

// Shard-merge determinism: the commit stage walks the batch in global
// first-touch order, so the shard→prefix assignment must be invisible in
// every output no matter how the batch is partitioned.
TEST(ShardPipeline, ShardCountBitIdentity) {
  const auto stream = make_stream(200);
  const RunResult baseline = run_receiver(stream, 1, 1);
  for (const std::size_t shards : {1ul, 2ul, 3ul, 8ul, 64ul}) {
    const RunResult sharded = run_receiver(stream, 4, shards);
    EXPECT_EQ(baseline.emitted, sharded.emitted) << shards << " shards";
    EXPECT_TRUE(baseline.same_routes(sharded)) << shards << " shards";
    EXPECT_TRUE(baseline.same_stats(sharded)) << shards << " shards";
  }
}

TEST(ShardPipeline, ShardOfIsStableAndInRange) {
  for (std::uint32_t i = 0; i < 500; ++i) {
    const auto prefix = nth_prefix(i);
    for (const std::size_t shards : {1ul, 2ul, 7ul, 16ul}) {
      const std::size_t shard = core::DbgpSpeaker::shard_of(prefix, shards);
      EXPECT_LT(shard, shards);
      EXPECT_EQ(shard, core::DbgpSpeaker::shard_of(prefix, shards));
    }
  }
}

// max_batch == 0 + a wide pool stages raw refcounted frames and decodes them
// in parallel at flush; the output must match eager per-frame staging.
TEST(ShardPipeline, DeferredDecodeMatchesEagerStaging) {
  const auto stream = make_stream(200);
  const RunResult eager = run_receiver(stream, 1, 0, /*max_batch=*/0);
  ASSERT_FALSE(eager.emitted.empty());
  for (const std::size_t threads : {2ul, 8ul}) {
    const RunResult deferred =
        run_receiver(stream, threads, 0, /*max_batch=*/0, /*shared_frames=*/true);
    EXPECT_EQ(eager.emitted, deferred.emitted) << threads << " threads";
    EXPECT_TRUE(eager.same_routes(deferred)) << threads << " threads";
    EXPECT_TRUE(eager.same_stats(deferred)) << threads << " threads";
  }
}

// Undecodable frames: the eager path throws util::DecodeError from
// enqueue_frame; the deferred path must reject the same frames at drain
// (take_deferred_rejects) with identical surviving state and byte counters.
TEST(ShardPipeline, CorruptFrameRejectionIdentity) {
  auto stream = make_stream(120);
  const std::vector<std::uint8_t> garbage = {1, 0xFF, 0xFF, 0x00, 0x07};
  for (std::size_t i = 5; i < stream.size(); i += 17) {
    stream.insert(stream.begin() + static_cast<std::ptrdiff_t>(i), {0, garbage});
  }
  const RunResult eager = run_receiver(stream, 1, 0, /*max_batch=*/0);
  ASSERT_GT(eager.eager_rejects, 0u);
  EXPECT_EQ(eager.deferred_rejects, 0u);
  const RunResult deferred =
      run_receiver(stream, 8, 0, /*max_batch=*/0, /*shared_frames=*/true);
  EXPECT_EQ(deferred.eager_rejects, 0u);
  EXPECT_EQ(deferred.deferred_rejects, eager.eager_rejects);
  EXPECT_EQ(eager.emitted, deferred.emitted);
  EXPECT_TRUE(eager.same_routes(deferred));
  EXPECT_TRUE(eager.same_stats(deferred));  // includes bytes_received parity
}

// Property test: random interleavings of the two upstream sessions must stay
// bit-identical across thread counts — the ordering guarantee cannot depend
// on a particular arrival pattern.
TEST(ShardPipeline, PropertyRandomInterleavingsBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto stream = make_stream(150);
    util::Rng rng(seed);
    for (std::size_t i = stream.size(); i > 1; --i) {
      std::swap(stream[i - 1], stream[rng.next_u32() % i]);
    }
    const RunResult baseline = run_receiver(stream, 1);
    const RunResult parallel = run_receiver(stream, 8);
    EXPECT_EQ(baseline.emitted, parallel.emitted) << "seed " << seed;
    EXPECT_TRUE(baseline.same_routes(parallel)) << "seed " << seed;
    EXPECT_TRUE(baseline.same_stats(parallel)) << "seed " << seed;
  }
}

// -- The parallel gate --------------------------------------------------------

TEST(ShardPipeline, GateDisengagesForCausalAndOutOfBand) {
  util::ThreadPool pool(4);

  core::DbgpSpeaker wide(bgp_as(1));
  wide.set_parallel(&pool);
  EXPECT_TRUE(wide.parallel_active());
  EXPECT_EQ(wide.shard_count(), pool.size());

  telemetry::CausalTracer tracer;
  wide.set_causal(&tracer);
  EXPECT_FALSE(wide.parallel_active());  // audits must mint ids in order
  wide.set_causal(nullptr);
  EXPECT_TRUE(wide.parallel_active());

  util::ThreadPool narrow_pool(1);
  core::DbgpSpeaker narrow(bgp_as(2));
  narrow.set_parallel(&narrow_pool);
  EXPECT_FALSE(narrow.parallel_active());

  auto oob_config = bgp_as(3);
  oob_config.dissemination = core::Dissemination::kOutOfBand;
  core::LookupService lookup;
  core::DbgpSpeaker oob(oob_config, &lookup);
  oob.set_parallel(&pool);
  EXPECT_FALSE(oob.parallel_active());  // emit writes the lookup service
}

// -- Network-level bit-identity ----------------------------------------------

simnet::DbgpNetwork make_line(std::size_t n, simnet::DbgpNetwork::Options options) {
  simnet::DbgpNetwork net(nullptr, options);
  for (bgp::AsNumber asn = 1; asn <= n; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn < n; ++asn) net.add_link(asn, asn + 1);
  return net;
}

bool same_churn(const simnet::RunStats& a, const simnet::RunStats& b) {
  return a.processed == b.processed && a.link_flaps == b.link_flaps &&
         a.crashes == b.crashes && a.restarts == b.restarts &&
         a.frames_lost == b.frames_lost && a.frames_duplicated == b.frames_duplicated &&
         a.frames_reordered == b.frames_reordered &&
         a.frames_corrupted == b.frames_corrupted &&
         a.frames_rejected == b.frames_rejected;
}

bool same_trace(const std::vector<telemetry::TraceEvent>& a,
                const std::vector<telemetry::TraceEvent>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].from_as != b[i].from_as ||
        a[i].to_as != b[i].to_as || a[i].frame_type != b[i].frame_type ||
        a[i].prefix != b[i].prefix || a[i].frame_bytes != b[i].frame_bytes ||
        a[i].understood != b[i].understood) {
      return false;
    }
  }
  return true;
}

// Every AS's Loc-RIB flattened to one comparable string.
std::string dump_ribs(simnet::DbgpNetwork& net, std::size_t n) {
  std::string out;
  for (bgp::AsNumber asn = 1; asn <= n; ++asn) {
    for (const auto& prefix : net.speaker(asn).selected_prefixes()) {
      const auto* best = net.speaker(asn).best(prefix);
      out += std::to_string(asn) + " " + prefix.to_string() + " via " +
             (best == nullptr ? "?" : best->ia.path_vector.to_string()) + "\n";
    }
  }
  return out;
}

simnet::ChaosOptions stress_chaos() {
  simnet::ChaosOptions chaos;
  chaos.seed = 7;
  chaos.horizon = 2.0;
  chaos.flap_fraction = 0.5;
  chaos.mean_up = 0.3;
  chaos.mean_down = 0.05;
  chaos.faults.loss = 0.05;
  chaos.faults.duplicate = 0.03;
  chaos.faults.reorder = 0.05;
  chaos.faults.corrupt = 0.05;
  chaos.crash_fraction = 0.3;
  chaos.mean_downtime = 0.3;
  return chaos;
}

struct NetworkRun {
  simnet::RunStats stats;
  std::vector<telemetry::TraceEvent> trace;
  std::string ribs;
};

NetworkRun run_network(std::size_t speaker_threads, bool with_chaos) {
  telemetry::PropagationTracer tracer;
  simnet::DbgpNetwork::Options options;
  options.delivery = simnet::DeliveryMode::kBatched;
  options.tracer = &tracer;
  options.speaker_threads = speaker_threads;
  simnet::DbgpNetwork net = make_line(5, options);
  for (std::uint32_t i = 0; i < 20; ++i) net.originate(1 + i % 5, nth_prefix(i));
  if (with_chaos) {
    simnet::ChaosPolicy policy(stress_chaos());
    policy.inject(net);
  }
  NetworkRun result;
  result.stats = net.run_to_convergence();
  result.trace = tracer.events();
  result.ribs = dump_ribs(net, 5);
  return result;
}

TEST(ShardPipelineNetwork, FaultFreeBitIdenticalAcrossSpeakerThreads) {
  const NetworkRun baseline = run_network(1, /*with_chaos=*/false);
  ASSERT_FALSE(baseline.ribs.empty());
  for (const std::size_t threads : {2ul, 8ul}) {
    const NetworkRun parallel = run_network(threads, /*with_chaos=*/false);
    EXPECT_TRUE(same_churn(baseline.stats, parallel.stats)) << threads << " threads";
    EXPECT_TRUE(same_trace(baseline.trace, parallel.trace)) << threads << " threads";
    EXPECT_EQ(baseline.ribs, parallel.ribs) << threads << " threads";
  }
}

TEST(ShardPipelineNetwork, ChaosBitIdenticalAcrossSpeakerThreads) {
  const NetworkRun baseline = run_network(1, /*with_chaos=*/true);
  EXPECT_GT(baseline.stats.link_flaps, 0u);  // the schedule actually fired
  for (const std::size_t threads : {2ul, 8ul}) {
    const NetworkRun parallel = run_network(threads, /*with_chaos=*/true);
    EXPECT_TRUE(same_churn(baseline.stats, parallel.stats)) << threads << " threads";
    EXPECT_TRUE(same_trace(baseline.trace, parallel.trace)) << threads << " threads";
    EXPECT_EQ(baseline.ribs, parallel.ribs) << threads << " threads";
  }
}

// Causal tracing pins every speaker to the sequential path; the span/audit
// stream must come out identical whatever thread count was requested.
TEST(ShardPipelineNetwork, CausalTracingForcesSequentialWithIdenticalAudits) {
  auto run_causal = [](std::size_t speaker_threads) {
    auto tracer = std::make_unique<telemetry::CausalTracer>();
    simnet::DbgpNetwork::Options options;
    options.delivery = simnet::DeliveryMode::kBatched;
    options.causal = tracer.get();
    options.speaker_threads = speaker_threads;
    simnet::DbgpNetwork net = make_line(4, options);
    for (bgp::AsNumber asn = 1; asn <= 4; ++asn) {
      EXPECT_FALSE(net.speaker(asn).parallel_active())
          << "AS" << asn << " with " << speaker_threads << " threads";
    }
    for (std::uint32_t i = 0; i < 8; ++i) net.originate(1 + i % 4, nth_prefix(i));
    net.run_to_convergence();
    return std::make_tuple(tracer->span_count(), tracer->audit_count(),
                           dump_ribs(net, 4));
  };
  const auto baseline = run_causal(1);
  const auto parallel = run_causal(8);
  EXPECT_GT(std::get<1>(baseline), 0u);
  EXPECT_EQ(baseline, parallel);
}

// Live reconfiguration: speaker-threads changes are refused while any
// speaker holds staged frames (the batch must drain first) and applied
// cleanly between drains.
TEST(ShardPipelineNetwork, SetSpeakerThreadsRejectedMidBatch) {
  simnet::DbgpNetwork::Options options;
  options.delivery = simnet::DeliveryMode::kBatched;
  simnet::DbgpNetwork net = make_line(3, options);
  const auto prefix = nth_prefix(0);
  net.originate(1, prefix);
  // Process exactly the first delivery: AS2 now holds a staged frame.
  const simnet::RunStats partial = net.run_to_convergence(1);
  ASSERT_TRUE(partial.capped);
  ASSERT_EQ(net.speaker(2).pending_batch(), 1u);
  EXPECT_THROW(net.set_speaker_threads(4), std::runtime_error);
  EXPECT_EQ(net.speaker_threads(), 1u);  // refused change left options alone

  net.run_to_convergence();
  EXPECT_EQ(net.speaker(2).pending_batch(), 0u);
  EXPECT_NO_THROW(net.set_speaker_threads(4));
  EXPECT_EQ(net.speaker_threads(), 4u);

  // The network still routes — and back to 1 detaches the pool entirely.
  net.withdraw(1, prefix);
  net.run_to_convergence();
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);
  EXPECT_NO_THROW(net.set_speaker_threads(1));
  EXPECT_EQ(net.speaker_threads(), 1u);
}

}  // namespace
}  // namespace dbgp
