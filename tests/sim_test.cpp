#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/routing.h"
#include "topology/adoption.h"
#include "topology/waxman.h"

namespace dbgp::sim {
namespace {

using topology::AsGraph;
using topology::NodeId;
using topology::Relationship;

// A small hand-built hierarchy:
//        0 (tier-1)
//       / \
//      1   2     (1, 2 customers of 0)
//     / \   \
//    3   4   5   (stubs)
// Plus a peer link 1 -- 2.
AsGraph small_hierarchy() {
  AsGraph g(6);
  g.add_edge(0, 1, Relationship::kProviderOf);
  g.add_edge(0, 2, Relationship::kProviderOf);
  g.add_edge(1, 3, Relationship::kProviderOf);
  g.add_edge(1, 4, Relationship::kProviderOf);
  g.add_edge(2, 5, Relationship::kProviderOf);
  g.add_edge(1, 2, Relationship::kPeerOf);
  return g;
}

TEST(RoutingOracle, ClassesTowardStub) {
  const AsGraph g = small_hierarchy();
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(3);  // destination: stub 3

  EXPECT_EQ(routes.route_class[3], RouteClass::kSelf);
  // 1 is 3's provider: customer route, 1 hop.
  EXPECT_EQ(routes.route_class[1], RouteClass::kCustomerRoute);
  EXPECT_EQ(routes.hops[1], 1);
  // 0 reaches 3 down through 1: customer route, 2 hops.
  EXPECT_EQ(routes.route_class[0], RouteClass::kCustomerRoute);
  EXPECT_EQ(routes.hops[0], 2);
  // 2 peers with 1 (which has a customer route): peer route.
  EXPECT_EQ(routes.route_class[2], RouteClass::kPeerRoute);
  EXPECT_EQ(routes.hops[2], 2);
  // 4 is a stub: only a provider route via 1.
  EXPECT_EQ(routes.route_class[4], RouteClass::kProviderRoute);
  EXPECT_EQ(routes.best_next[4], 1u);
  // 5 goes up to 2: provider route.
  EXPECT_EQ(routes.route_class[5], RouteClass::kProviderRoute);
  EXPECT_EQ(routes.best_next[5], 2u);
}

TEST(RoutingOracle, EveryoneReachableInConnectedHierarchy) {
  const AsGraph g = small_hierarchy();
  RoutingOracle oracle(g);
  for (NodeId d = 0; d < g.size(); ++d) {
    const auto routes = oracle.compute(d);
    for (NodeId x = 0; x < g.size(); ++x) {
      EXPECT_TRUE(routes.reachable(x)) << "x=" << x << " d=" << d;
    }
  }
}

TEST(RoutingOracle, DefaultPathsAreValleyFree) {
  util::Rng rng(17);
  topology::WaxmanConfig config;
  config.nodes = 120;
  const AsGraph g = topology::generate_waxman(config, rng);
  RoutingOracle oracle(g);
  for (NodeId d = 0; d < 20; ++d) {  // spot-check 20 destinations
    const auto routes = oracle.compute(d);
    for (NodeId s = 0; s < g.size(); ++s) {
      if (s == d || !routes.reachable(s)) continue;
      // Follow default next hops to the destination.
      std::vector<NodeId> path{s};
      NodeId at = s;
      for (std::size_t guard = 0; at != d && guard < g.size(); ++guard) {
        at = routes.best_next[at];
        path.push_back(at);
      }
      ASSERT_EQ(at, d) << "default chain did not reach destination";
      EXPECT_TRUE(is_valley_free(g, path));
    }
  }
}

TEST(RoutingOracle, CandidatesFormDag) {
  util::Rng rng(23);
  topology::WaxmanConfig config;
  config.nodes = 150;
  const AsGraph g = topology::generate_waxman(config, rng);
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(0);
  for (NodeId x = 0; x < g.size(); ++x) {
    for (NodeId y : routes.candidates[x]) {
      EXPECT_LT(routes.key(y), routes.key(x));
    }
  }
}

TEST(ValleyFree, DetectsValleys) {
  const AsGraph g = small_hierarchy();
  // 3 -> 1 -> 4: up then down = fine.
  EXPECT_TRUE(is_valley_free(g, {3, 1, 4}));
  // 3 -> 1 -> 0 -> 2 -> 5: up, up, down, down = fine.
  EXPECT_TRUE(is_valley_free(g, {3, 1, 0, 2, 5}));
  // 4 -> 1 -> 2 -> 0: peer then UP = valley.
  EXPECT_FALSE(is_valley_free(g, {4, 1, 2, 0}));
  // 0 -> 1 -> 0: not even simple, and down then up = valley.
  EXPECT_FALSE(is_valley_free(g, {0, 1, 0}));
  // Non-adjacent hop.
  EXPECT_FALSE(is_valley_free(g, {3, 5}));
}

TEST(ExtraPaths, DestinationSeedsOneAndCountsGrow) {
  const AsGraph g = small_hierarchy();
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(3);
  const std::vector<bool> none(6, false);
  const auto baseline_counts =
      extra_paths_counts(routes, none, BaselineProtocol::kBgp, {});
  // Nobody upgraded: everyone has exactly the one baseline path.
  for (NodeId x = 0; x < 6; ++x) {
    if (x == 3) continue;
    EXPECT_EQ(baseline_counts[x], 1u) << x;
  }

  const std::vector<bool> all(6, true);
  const auto full = extra_paths_counts(routes, all, BaselineProtocol::kDbgp, {});
  // Node 2 can now use both its candidates (peer 1 and provider... at least
  // as many paths as the baseline).
  for (NodeId x = 0; x < 6; ++x) {
    if (x == 3) continue;
    EXPECT_GE(full[x], baseline_counts[x]) << x;
  }
  // Node 0 has candidate 1 only; node 2 has candidates {1 (peer), 0}.
  EXPECT_GE(full[2], 2u);
}

TEST(ExtraPaths, CapLimitsPerAdvertisementCount) {
  // Star: destination 0 with 15 stub children all upgraded, and one parent
  // 16 above them... build: 0 provider-of nothing; children connect 0.
  AsGraph g(17);
  for (NodeId i = 1; i <= 15; ++i) g.add_edge(i, 0, Relationship::kProviderOf);
  for (NodeId i = 1; i <= 15; ++i) g.add_edge(16, i, Relationship::kCustomerOf);
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(0);
  std::vector<bool> all(17, true);
  ExtraPathsParams params;
  params.path_cap = 10;
  const auto counts = extra_paths_counts(routes, all, BaselineProtocol::kDbgp, params);
  // 16 hears from up to 15 children, each advertising 1; sum <= 15 but each
  // child's advertisement is capped at 10 (irrelevant here); 16's own count
  // can exceed the cap internally but its advertisement would clip.
  EXPECT_GE(counts[16], 10u);
}

TEST(ExtraPaths, DbgpNeverWorseThanBgp) {
  // The paper's headline property: total benefits with the D-BGP baseline
  // are always >= the BGP baseline (Section 6.3).
  util::Rng rng(31);
  topology::WaxmanConfig config;
  config.nodes = 200;
  const AsGraph g = topology::generate_waxman(config, rng);
  RoutingOracle oracle(g);
  for (double level : {0.2, 0.5, 0.8}) {
    util::Rng arng(7);
    const auto upgraded = topology::random_adoption(g.size(), level, arng);
    for (NodeId d = 0; d < 10; ++d) {
      const auto routes = oracle.compute(d);
      const auto dbgp = extra_paths_counts(routes, upgraded, BaselineProtocol::kDbgp, {});
      const auto bgp = extra_paths_counts(routes, upgraded, BaselineProtocol::kBgp, {});
      for (NodeId x = 0; x < g.size(); ++x) {
        ASSERT_GE(dbgp[x], bgp[x]) << "x=" << x << " d=" << d << " level=" << level;
      }
    }
  }
}

TEST(Bottleneck, FullAdoptionKnowsActual) {
  const AsGraph g = small_hierarchy();
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(3);
  const std::vector<bool> all(6, true);
  const std::vector<std::uint64_t> bw{100, 50, 200, 80, 60, 70};
  const auto result = bottleneck_paths(routes, all, bw, BaselineProtocol::kDbgp);
  for (NodeId x = 0; x < 6; ++x) {
    if (x == 3 || !routes.reachable(x)) continue;
    EXPECT_EQ(result.known[x], result.actual[x]) << x;
  }
}

TEST(Bottleneck, ZeroAdoptionFollowsDefaultPaths) {
  const AsGraph g = small_hierarchy();
  RoutingOracle oracle(g);
  const auto routes = oracle.compute(3);
  const std::vector<bool> none(6, false);
  const std::vector<std::uint64_t> bw{100, 50, 200, 80, 60, 70};
  const auto result = bottleneck_paths(routes, none, bw, BaselineProtocol::kBgp);
  // Node 4's default path is 4 -> 1 -> 3: actual = min(bw[1], bw[3]) = 50.
  EXPECT_EQ(result.actual[4], 50u);
  // Nobody has any knowledge.
  for (NodeId x = 0; x < 6; ++x) {
    if (x == 3) continue;
    EXPECT_EQ(result.known[x], BottleneckParams::kNoInfo);
  }
}

TEST(Sweep, SmallExtraPathsShapes) {
  SweepConfig config;
  config.topology.nodes = 120;
  config.trials = 3;
  config.adoption_levels = {0.2, 0.5, 0.8};
  const auto result = run_extra_paths_sweep(config);
  ASSERT_EQ(result.dbgp_baseline.size(), 3u);
  // Paper shape: D-BGP total benefit >= BGP at every level; best case is
  // the ceiling; status quo roughly #destinations.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(result.dbgp_baseline[i].benefit.mean + 1e-9,
              result.bgp_baseline[i].benefit.mean);
    EXPECT_LE(result.dbgp_baseline[i].benefit.mean, result.best_case + 1e-9);
  }
  EXPECT_NEAR(result.status_quo, 119.0, 1.0);
  EXPECT_GT(result.best_case, result.status_quo);
  // Monotone-ish growth for D-BGP across these coarse levels.
  EXPECT_GT(result.dbgp_baseline[2].benefit.mean, result.dbgp_baseline[0].benefit.mean);
}

TEST(Sweep, SmallBottleneckShapes) {
  SweepConfig config;
  config.topology.nodes = 120;
  config.trials = 3;
  config.adoption_levels = {0.1, 0.5, 1.0};
  const auto result = run_bottleneck_sweep(config);
  // At full adoption both baselines coincide and reach the best case.
  EXPECT_NEAR(result.dbgp_baseline[2].benefit.mean, result.best_case,
              result.best_case * 0.02);
  // D-BGP at 50% should not trail BGP at 50%.
  EXPECT_GE(result.dbgp_baseline[1].benefit.mean + 1e-9,
            result.bgp_baseline[1].benefit.mean);
  EXPECT_GT(result.status_quo, 0.0);
}

TEST(Sweep, DeterministicForSeed) {
  SweepConfig config;
  config.topology.nodes = 80;
  config.trials = 2;
  config.adoption_levels = {0.5};
  const auto a = run_extra_paths_sweep(config);
  const auto b = run_extra_paths_sweep(config);
  EXPECT_DOUBLE_EQ(a.dbgp_baseline[0].benefit.mean, b.dbgp_baseline[0].benefit.mean);
  config.seed = 43;
  const auto c = run_extra_paths_sweep(config);
  EXPECT_NE(a.dbgp_baseline[0].benefit.mean, c.dbgp_baseline[0].benefit.mean);
}

}  // namespace
}  // namespace dbgp::sim
