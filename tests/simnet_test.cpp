#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "simnet/dataplane.h"
#include "simnet/event_queue.h"
#include "simnet/network.h"

namespace dbgp::simnet {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, HandlersMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, MaxEventsGuard) {
  EventQueue q;
  // Self-perpetuating event: the guard must stop it.
  std::function<void()> loop = [&] { q.schedule_in(1.0, loop); };
  q.schedule_at(0.0, loop);
  EXPECT_EQ(q.run(100), 100u);
}

TEST(EventQueue, RunReportsDrainedVsCapped) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  const RunStats drained = q.run(100);
  EXPECT_EQ(drained.processed, 5u);
  EXPECT_FALSE(drained.capped);

  std::function<void()> loop = [&] { q.schedule_in(1.0, loop); };
  q.schedule_at(q.now(), loop);
  const RunStats capped = q.run(10);
  EXPECT_EQ(capped.processed, 10u);
  EXPECT_TRUE(capped.capped);
}

TEST(EventQueue, RunUntilReportsCappedOnlyWithinDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(5.0, [&] { ++fired; });
  // Work remains, but it is beyond the deadline: not capped.
  const RunStats stats = q.run_until(2.0, 100);
  EXPECT_EQ(stats.processed, 1u);
  EXPECT_FALSE(stats.capped);

  std::function<void()> loop = [&] { q.schedule_in(0.1, loop); };
  q.schedule_at(q.now(), loop);
  const RunStats capped = q.run_until(100.0, 5);
  EXPECT_TRUE(capped.capped);
}

core::DbgpConfig bgp_as(bgp::AsNumber asn) {
  core::DbgpConfig config;
  config.asn = asn;
  config.next_hop = net::Ipv4Address(asn);
  return config;
}

TEST(DbgpNetwork, LineConvergence) {
  DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 5; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn < 5; ++asn) net.add_link(asn, asn + 1);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  for (bgp::AsNumber asn = 2; asn <= 5; ++asn) {
    const auto* best = net.speaker(asn).best(prefix);
    ASSERT_NE(best, nullptr) << "AS" << asn;
    EXPECT_EQ(best->ia.path_vector.hop_count(), static_cast<std::size_t>(asn - 1));
  }
}

TEST(DbgpNetwork, RingPrefersShortSide) {
  DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 6; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  for (bgp::AsNumber asn = 1; asn <= 6; ++asn) net.add_link(asn, asn % 6 + 1);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  // AS 3 is two hops clockwise (3<-2<-1), four counter-clockwise.
  const auto* best = net.speaker(3).best(prefix);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->ia.path_vector.hop_count(), 2u);
}

TEST(DbgpNetwork, DisconnectTriggersReroute) {
  DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 4; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  // Square 1-2-4, 1-3-4.
  net.add_link(1, 2);
  net.add_link(2, 4);
  net.add_link(1, 3);
  net.add_link(3, 4);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  const auto* before = net.speaker(4).best(prefix);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->ia.path_vector.hop_count(), 2u);
  const bgp::AsNumber via = before->ia.path_vector.elements()[0].asn;

  net.link(4, via).set_state(LinkState::kDown);
  net.run_to_convergence();
  const auto* after = net.speaker(4).best(prefix);
  ASSERT_NE(after, nullptr);
  EXPECT_NE(after->ia.path_vector.elements()[0].asn, via);
}

TEST(DbgpNetwork, WithdrawPropagates) {
  DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 3; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(1, 2);
  net.add_link(2, 3);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);
  net.withdraw(1, prefix);
  net.run_to_convergence();
  EXPECT_EQ(net.speaker(3).best(prefix), nullptr);
}

TEST(DbgpNetwork, LateConnectGetsFullTable) {
  DbgpNetwork net;
  for (bgp::AsNumber asn = 1; asn <= 3; ++asn) {
    net.add_as(bgp_as(asn)).add_module(std::make_unique<protocols::BgpModule>());
  }
  net.add_link(1, 2);
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  net.originate(1, prefix);
  net.run_to_convergence();
  // AS 3 joins after origination: connect() performs initial sync.
  net.add_link(2, 3);
  net.run_to_convergence();
  ASSERT_NE(net.speaker(3).best(prefix), nullptr);
}

TEST(DbgpNetwork, DuplicateAsRejected) {
  DbgpNetwork net;
  net.add_as(bgp_as(1));
  EXPECT_THROW(net.add_as(bgp_as(1)), std::invalid_argument);
}

// -- Data plane -------------------------------------------------------------------

TEST(DataPlane, HopByHopIpv4) {
  DataPlane dp;
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  dp.set_next_hop(1, prefix, 2);
  dp.set_next_hop(2, prefix, 3);
  dp.set_local_delivery(3, prefix);
  Packet packet;
  packet.stack.push_back(Header::ipv4(net::Ipv4Address(10, 1, 1, 1)));
  const auto trace = dp.forward(1, packet);
  EXPECT_TRUE(trace.delivered) << trace.drop_reason;
  EXPECT_EQ(trace.hops, (std::vector<bgp::AsNumber>{1, 2, 3}));
}

TEST(DataPlane, LongestPrefixWins) {
  DataPlane dp;
  dp.set_next_hop(1, *net::Prefix::parse("10.0.0.0/8"), 2);
  dp.set_next_hop(1, *net::Prefix::parse("10.9.0.0/16"), 3);
  dp.set_local_delivery(2, *net::Prefix::parse("10.0.0.0/8"));
  dp.set_local_delivery(3, *net::Prefix::parse("10.9.0.0/16"));
  Packet p1;
  p1.stack.push_back(Header::ipv4(net::Ipv4Address(10, 1, 0, 1)));
  EXPECT_EQ(dp.forward(1, p1).hops.back(), 2u);
  Packet p2;
  p2.stack.push_back(Header::ipv4(net::Ipv4Address(10, 9, 0, 1)));
  EXPECT_EQ(dp.forward(1, p2).hops.back(), 3u);
}

TEST(DataPlane, NoRouteDropsWithReason) {
  DataPlane dp;
  dp.set_next_hop(1, *net::Prefix::parse("10.0.0.0/8"), 2);
  Packet packet;
  packet.stack.push_back(Header::ipv4(net::Ipv4Address(11, 0, 0, 1)));
  const auto trace = dp.forward(1, packet);
  EXPECT_FALSE(trace.delivered);
  EXPECT_NE(trace.drop_reason.find("no route"), std::string::npos);
}

TEST(DataPlane, SourceRouteFollowsExplicitHops) {
  DataPlane dp;
  dp.add_link(1, 7);
  dp.add_link(7, 3);
  dp.set_local_delivery(3, *net::Prefix::parse("10.0.0.0/8"));
  Packet packet;
  packet.stack.push_back(Header::ipv4(net::Ipv4Address(10, 0, 0, 1)));
  packet.stack.push_back(Header::source_route({7, 3}));
  const auto trace = dp.forward(1, packet);
  EXPECT_TRUE(trace.delivered) << trace.drop_reason;
  EXPECT_EQ(trace.hops, (std::vector<bgp::AsNumber>{1, 7, 3}));
}

TEST(DataPlane, SourceRouteRejectsNonAdjacentHop) {
  DataPlane dp;
  dp.add_link(1, 2);
  Packet packet;
  packet.stack.push_back(Header::source_route({9}));
  const auto trace = dp.forward(1, packet);
  EXPECT_FALSE(trace.delivered);
  EXPECT_NE(trace.drop_reason.find("non-adjacent"), std::string::npos);
}

TEST(DataPlane, TunnelPopsAtEndpoint) {
  DataPlane dp;
  const auto outer = *net::Prefix::parse("192.168.0.0/16");
  const auto inner = *net::Prefix::parse("10.0.0.0/8");
  dp.set_next_hop(1, outer, 2);
  dp.set_address_owner(net::Ipv4Address(192, 168, 0, 9), 2);
  dp.set_next_hop(2, inner, 3);
  dp.set_local_delivery(3, inner);
  Packet packet;
  packet.stack.push_back(Header::ipv4(net::Ipv4Address(10, 0, 0, 1)));
  packet.stack.push_back(Header::tunnel(net::Ipv4Address(192, 168, 0, 9)));
  const auto trace = dp.forward(1, packet);
  EXPECT_TRUE(trace.delivered) << trace.drop_reason;
  EXPECT_EQ(trace.hops, (std::vector<bgp::AsNumber>{1, 2, 3}));
}

TEST(DataPlane, TtlGuardsAgainstLoops) {
  DataPlane dp;
  const auto prefix = *net::Prefix::parse("10.0.0.0/8");
  dp.set_next_hop(1, prefix, 2);
  dp.set_next_hop(2, prefix, 1);  // forwarding loop
  Packet packet;
  packet.stack.push_back(Header::ipv4(net::Ipv4Address(10, 0, 0, 1)));
  const auto trace = dp.forward(1, packet, 16);
  EXPECT_FALSE(trace.delivered);
  EXPECT_EQ(trace.drop_reason, "TTL exceeded");
}

TEST(DataPlane, EmptyStackDeliversInPlace) {
  DataPlane dp;
  const auto trace = dp.forward(5, Packet{});
  EXPECT_TRUE(trace.delivered);
  EXPECT_EQ(trace.hops, std::vector<bgp::AsNumber>{5});
}

}  // namespace
}  // namespace dbgp::simnet
