// Determinism regression suite for the parallel sweep engine (part of the
// `concurrency` label, re-run under TSan by dbgp_tsan_check).
//
// The contract under test (DESIGN.md §11): run_extra_paths_sweep and
// run_bottleneck_sweep produce a SweepResult that is bit-identical for every
// SweepConfig::threads value, because tasks write pre-sized slots, RNG
// streams are split per logical task, and aggregation order is fixed by
// index. The golden-value tests additionally pin the aggregation itself, so
// a future refactor cannot silently reorder it while keeping self-
// consistency.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace dbgp::sim {
namespace {

// Recorded from the sequential engine (threads=1) at seed 42, nodes=100,
// trials=3, levels={0.3, 0.7} — see GoldenValuesLockAggregation.
constexpr double kGoldenExtraDbgp30 = 374.99444444444447;
constexpr double kGoldenExtraDbgp70 = 775.60502904865643;
constexpr double kGoldenExtraBgp30 = 250.04999999999998;
constexpr double kGoldenExtraStatusQuo = 99.0;
constexpr double kGoldenExtraBestCase = 1046.2853901695814;
constexpr double kGoldenBottleneckDbgp30 = 29219.622222222224;
constexpr double kGoldenBottleneckBgp70 = 30943.738095238095;
constexpr double kGoldenBottleneckStatusQuo = 28479.456666666665;

SweepConfig small_config(std::uint64_t seed, std::size_t threads) {
  SweepConfig config;
  config.topology.nodes = 120;
  config.trials = 4;
  config.adoption_levels = {0.2, 0.6, 1.0};
  config.seed = seed;
  config.threads = threads;
  return config;
}

void expect_identical(const SweepResult& a, const SweepResult& b,
                      const char* what) {
  // identical() is the product predicate the benches gate on; the
  // field-by-field EXPECTs below it localize a failure.
  EXPECT_TRUE(identical(a, b)) << what;
  ASSERT_EQ(a.dbgp_baseline.size(), b.dbgp_baseline.size());
  for (std::size_t i = 0; i < a.dbgp_baseline.size(); ++i) {
    EXPECT_EQ(a.dbgp_baseline[i].benefit.mean, b.dbgp_baseline[i].benefit.mean)
        << what << " dbgp level " << i;
    EXPECT_EQ(a.dbgp_baseline[i].benefit.ci95, b.dbgp_baseline[i].benefit.ci95)
        << what << " dbgp ci95 level " << i;
    EXPECT_EQ(a.bgp_baseline[i].benefit.mean, b.bgp_baseline[i].benefit.mean)
        << what << " bgp level " << i;
    EXPECT_EQ(a.bgp_baseline[i].benefit.stddev, b.bgp_baseline[i].benefit.stddev)
        << what << " bgp stddev level " << i;
  }
  EXPECT_EQ(a.status_quo, b.status_quo) << what;
  EXPECT_EQ(a.best_case, b.best_case) << what;
}

TEST(SweepDeterminism, ExtraPathsParallelEqualsSequential) {
  for (std::uint64_t seed : {42ULL, 1234ULL}) {
    const auto sequential = run_extra_paths_sweep(small_config(seed, 1));
    const auto parallel = run_extra_paths_sweep(small_config(seed, 8));
    expect_identical(sequential, parallel, "extra-paths");
  }
}

TEST(SweepDeterminism, BottleneckParallelEqualsSequential) {
  for (std::uint64_t seed : {42ULL, 1234ULL}) {
    const auto sequential = run_bottleneck_sweep(small_config(seed, 1));
    const auto parallel = run_bottleneck_sweep(small_config(seed, 8));
    expect_identical(sequential, parallel, "bottleneck");
  }
}

TEST(SweepDeterminism, StableAcrossEveryThreadCount) {
  // Thread counts imply different chunkings of all three phases; none may
  // leak into the result.
  const auto reference = run_extra_paths_sweep(small_config(42, 1));
  for (std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{5},
                              std::size_t{16}}) {
    const auto other = run_extra_paths_sweep(small_config(42, threads));
    expect_identical(reference, other, "thread-count sweep");
  }
}

TEST(SweepDeterminism, ThreadsFarExceedingTasksIsSafeAndIdentical) {
  SweepConfig config = small_config(7, 64);  // 64 threads, 4 trials, 3 levels
  config.trials = 2;
  config.adoption_levels = {0.5};
  const auto wide = run_extra_paths_sweep(config);
  config.threads = 1;
  const auto narrow = run_extra_paths_sweep(config);
  expect_identical(narrow, wide, "threads >> tasks");
}

TEST(SweepDeterminism, EmptyTrialsProduceZeroedSummariesNotCrashes) {
  SweepConfig config = small_config(42, 8);
  config.trials = 0;  // empty task ranges in every phase
  const auto result = run_extra_paths_sweep(config);
  ASSERT_EQ(result.dbgp_baseline.size(), config.adoption_levels.size());
  for (const auto& point : result.dbgp_baseline) {
    EXPECT_EQ(point.benefit.count, 0u);
    EXPECT_EQ(point.benefit.mean, 0.0);
  }
  EXPECT_EQ(result.status_quo, 0.0);
  EXPECT_EQ(result.best_case, 0.0);
}

TEST(SweepDeterminism, EmptyAdoptionLevelsStillMeasureEndpoints) {
  SweepConfig config = small_config(42, 4);
  config.adoption_levels.clear();
  const auto result = run_bottleneck_sweep(config);
  EXPECT_TRUE(result.dbgp_baseline.empty());
  EXPECT_TRUE(result.bgp_baseline.empty());
  EXPECT_GT(result.status_quo, 0.0);
  EXPECT_GT(result.best_case, result.status_quo);
}

TEST(SweepDeterminism, GoldenValuesLockAggregation) {
  // Golden values for one fixed configuration, recorded from the sequential
  // path. They pin (a) the trial-seed formula, (b) the per-(trial, level)
  // split_seed adoption streams, and (c) index-ordered aggregation. A
  // refactor that changes any of these must consciously regenerate them
  // (and the EXPERIMENTS.md tables + BENCH baselines with them).
  SweepConfig config;
  config.topology.nodes = 100;
  config.trials = 3;
  config.adoption_levels = {0.3, 0.7};
  config.seed = 42;
  config.threads = 1;

  const auto extra = run_extra_paths_sweep(config);
  ASSERT_EQ(extra.dbgp_baseline.size(), 2u);
  EXPECT_DOUBLE_EQ(extra.dbgp_baseline[0].benefit.mean, kGoldenExtraDbgp30);
  EXPECT_DOUBLE_EQ(extra.dbgp_baseline[1].benefit.mean, kGoldenExtraDbgp70);
  EXPECT_DOUBLE_EQ(extra.bgp_baseline[0].benefit.mean, kGoldenExtraBgp30);
  EXPECT_DOUBLE_EQ(extra.status_quo, kGoldenExtraStatusQuo);
  EXPECT_DOUBLE_EQ(extra.best_case, kGoldenExtraBestCase);

  const auto bottleneck = run_bottleneck_sweep(config);
  EXPECT_DOUBLE_EQ(bottleneck.dbgp_baseline[0].benefit.mean, kGoldenBottleneckDbgp30);
  EXPECT_DOUBLE_EQ(bottleneck.bgp_baseline[1].benefit.mean, kGoldenBottleneckBgp70);
  EXPECT_DOUBLE_EQ(bottleneck.status_quo, kGoldenBottleneckStatusQuo);

  // And the parallel engine must land on the very same goldens.
  config.threads = 8;
  expect_identical(extra, run_extra_paths_sweep(config), "extra golden parallel");
  expect_identical(bottleneck, run_bottleneck_sweep(config),
                   "bottleneck golden parallel");
}

}  // namespace
}  // namespace dbgp::sim
