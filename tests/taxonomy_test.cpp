#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/speaker.h"
#include "ia/codec.h"
#include "ia/ids.h"
#include "protocols/bgp_module.h"
#include "protocols/taxonomy.h"

namespace dbgp::protocols {
namespace {

TEST(Taxonomy, HasAllFourteenRows) {
  EXPECT_EQ(protocol_taxonomy().size(), 14u);
}

TEST(Taxonomy, GroupCountsMatchTable1) {
  std::size_t fixes = 0, custom = 0, replacements = 0;
  for (const auto& info : protocol_taxonomy()) {
    switch (info.scenario) {
      case Scenario::kCriticalFix: ++fixes; break;
      case Scenario::kCustom: ++custom; break;
      case Scenario::kReplacement: ++replacements; break;
    }
  }
  EXPECT_EQ(fixes, 6u);         // BGPSec, EQ-BGP, Xiao, LISP, R-BGP, Wiser
  EXPECT_EQ(custom, 3u);        // MIRO, Arrow, RON
  EXPECT_EQ(replacements, 5u);  // NIRA, SCION, Pathlets, YAMR, HLP
}

TEST(Taxonomy, ScenarioAssignmentsMatchPaper) {
  EXPECT_EQ(find_protocol_info("Wiser")->scenario, Scenario::kCriticalFix);
  EXPECT_EQ(find_protocol_info("BGPSec")->scenario, Scenario::kCriticalFix);
  EXPECT_EQ(find_protocol_info("MIRO")->scenario, Scenario::kCustom);
  EXPECT_EQ(find_protocol_info("SCION")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("Pathlets")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("HLP")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("nonexistent"), nullptr);
}

TEST(Taxonomy, ExtraControlInfoMatchesPaper) {
  EXPECT_EQ(find_protocol_info("Wiser")->extra_control_info, "path costs");
  EXPECT_EQ(find_protocol_info("BGPSec")->extra_control_info, "path attestations");
  EXPECT_EQ(find_protocol_info("Pathlets")->extra_control_info, "pathlets");
  EXPECT_EQ(find_protocol_info("LISP")->extra_control_info, "destination ingress IDs");
}

TEST(Taxonomy, DataPlaneNeedsByScenario) {
  for (const auto& info : protocol_taxonomy()) {
    switch (info.scenario) {
      case Scenario::kCriticalFix:
        // Critical fixes use the baseline's network protocol: no custom
        // forwarding, no multi-network-protocol headers.
        EXPECT_FALSE(info.needs_custom_forwarding) << info.name;
        EXPECT_FALSE(info.needs_multi_proto_headers) << info.name;
        break;
      case Scenario::kCustom:
        // Custom protocols must reach specific islands: tunnels.
        EXPECT_TRUE(info.needs_tunnels) << info.name;
        break;
      case Scenario::kReplacement:
        // Path-based/multi-hop replacements forward with custom headers
        // and need multi-network-protocol headers to cross gulfs (HLP is
        // the exception: it keeps hop-based forwarding).
        if (info.name != "HLP") {
          EXPECT_TRUE(info.needs_custom_forwarding) << info.name;
          EXPECT_TRUE(info.needs_multi_proto_headers) << info.name;
        }
        break;
    }
  }
}

TEST(Taxonomy, ImplementedProtocolsCoverEveryScenario) {
  bool fix = false, custom = false, replacement = false;
  for (const auto& info : protocol_taxonomy()) {
    if (info.implemented_as == 0) continue;
    switch (info.scenario) {
      case Scenario::kCriticalFix: fix = true; break;
      case Scenario::kCustom: custom = true; break;
      case Scenario::kReplacement: replacement = true; break;
    }
  }
  EXPECT_TRUE(fix);
  EXPECT_TRUE(custom);
  EXPECT_TRUE(replacement);
}

TEST(Taxonomy, ImplementedIdsAreRealProtocolIds) {
  EXPECT_EQ(find_protocol_info("Wiser")->implemented_as, ia::kProtoWiser);
  EXPECT_EQ(find_protocol_info("BGPSec")->implemented_as, ia::kProtoBgpSec);
  EXPECT_EQ(find_protocol_info("SCION")->implemented_as, ia::kProtoScion);
  EXPECT_EQ(find_protocol_info("Pathlets")->implemented_as, ia::kProtoPathlets);
  EXPECT_EQ(find_protocol_info("MIRO")->implemented_as, ia::kProtoMiro);
  EXPECT_EQ(find_protocol_info("EQ-BGP")->implemented_as, ia::kProtoEqBgp);
  EXPECT_EQ(find_protocol_info("R-BGP")->implemented_as, ia::kProtoRBgp);
  EXPECT_EQ(find_protocol_info("LISP")->implemented_as, ia::kProtoLisp);
  EXPECT_EQ(find_protocol_info("HLP")->implemented_as, ia::kProtoHlp);
}

TEST(Taxonomy, NineOfFourteenImplemented) {
  std::size_t implemented = 0;
  for (const auto& info : protocol_taxonomy()) implemented += info.implemented_as != 0;
  EXPECT_EQ(implemented, 9u);
}

TEST(Taxonomy, ExtendedTableAppendsNewArchetypesAfterFrozenPaperRows) {
  // Table 1 stays frozen at 14 rows; the post-paper archetypes only ever
  // append to the extended view.
  const auto paper = protocol_taxonomy();
  const auto extended = extended_protocol_taxonomy();
  ASSERT_EQ(paper.size(), 14u);
  ASSERT_EQ(extended.size(), 16u);
  for (std::size_t i = 0; i < paper.size(); ++i) {
    EXPECT_EQ(paper[i].name, extended[i].name) << "row " << i;
    EXPECT_NE(paper[i].name, "FC-BGP");
    EXPECT_NE(paper[i].name, "StackVec");
  }

  const auto* fc = find_protocol_info("FC-BGP");
  ASSERT_NE(fc, nullptr);
  EXPECT_EQ(fc->scenario, Scenario::kCriticalFix);
  EXPECT_EQ(fc->implemented_as, ia::kProtoFcBgp);
  // Critical fix: baseline forwarding, no tunnels, no custom headers.
  EXPECT_FALSE(fc->needs_tunnels);
  EXPECT_FALSE(fc->needs_custom_forwarding);
  EXPECT_FALSE(fc->needs_multi_proto_headers);

  const auto* sv = find_protocol_info("StackVec");
  ASSERT_NE(sv, nullptr);
  EXPECT_EQ(sv->scenario, Scenario::kCustom);
  EXPECT_EQ(sv->implemented_as, ia::kProtoStackVec);
  // Custom protocol reaching specific islands: tunnels (that is the point
  // of the stack vector).
  EXPECT_TRUE(sv->needs_tunnels);
}

TEST(Taxonomy, ExtendedIdsResolveInTheDefaultRegistry) {
  const auto& registry = ia::default_registry();
  EXPECT_EQ(registry.name(ia::kProtoFcBgp), "fcbgp");
  EXPECT_EQ(registry.name(ia::kProtoStackVec), "stackvec");
}

TEST(Taxonomy, UnknownProtocolDescriptorsSurviveLegacySpliceByteIdentical) {
  // The evolvability contract behind the whole taxonomy (CF-R1): a legacy
  // hop — a gulf AS running only baseline BGP — must forward control
  // information of protocols it has never heard of with the descriptor
  // section spliced from the incoming wire bytes, byte for byte. Protocol
  // IDs far beyond anything registered (a future 15th/20th/1000th row of
  // the table) ride along unchanged; if the legacy hop ever re-encoded the
  // tail from materialized descriptors, an ID-table or varint-width bug
  // would corrupt exactly these.
  ia::IntegratedAdvertisement in;
  in.destination = *net::Prefix::parse("10.42.0.0/16");
  in.path_vector.prepend_as(60);
  in.path_vector.prepend_as(49);
  in.baseline.as_path = in.path_vector.to_bgp_as_path();
  in.baseline.next_hop = net::Ipv4Address(49);
  // Known-new and unknown-future protocols, interleaved; one ID near the
  // top of the varint range, plus a duplicated payload so the blob table's
  // sharing is part of what the splice must preserve.
  const std::vector<std::uint8_t> shared = {0xde, 0xad, 0xbe, 0xef};
  in.set_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments, {0x01, 0x02});
  in.set_path_descriptor(77, 1, shared);
  in.set_path_descriptor(4000000000u, 9, shared);
  in.add_island_descriptor(ia::IslandId::assigned(5), 123456789u, 2, {0x55});

  const auto in_frame = core::DbgpSpeaker::encode_announce(in, {});
  const auto in_tail = ia::decode_ia(std::span(in_frame).subspan(1)).opaque_tail();
  ASSERT_TRUE(in_tail.valid());

  core::DbgpConfig config;
  config.asn = 50;  // gulf AS: no island, baseline module only
  config.next_hop = net::Ipv4Address(50);
  core::DbgpSpeaker legacy(config);
  legacy.add_module(std::make_unique<BgpModule>());
  const bgp::PeerId from = legacy.add_peer(49);
  legacy.add_peer(51);

  const auto out = legacy.handle_frame(from, in_frame);
  ASSERT_EQ(out.size(), 1u);
  const auto forwarded = ia::decode_ia(std::span(out[0].bytes()).subspan(1));

  // The descriptor tail of the forwarded frame is the incoming one,
  // verbatim.
  ASSERT_TRUE(forwarded.opaque_tail().valid());
  const auto in_bytes = in_tail.bytes();
  const auto fwd_bytes = forwarded.opaque_tail().bytes();
  EXPECT_EQ(std::vector<std::uint8_t>(fwd_bytes.begin(), fwd_bytes.end()),
            std::vector<std::uint8_t>(in_bytes.begin(), in_bytes.end()));

  // And it still parses to the same content, unknown IDs intact.
  ASSERT_NE(forwarded.find_path_descriptor(4000000000u, 9), nullptr);
  EXPECT_EQ(forwarded.find_path_descriptor(4000000000u, 9)->value, shared);
  ASSERT_NE(forwarded.find_path_descriptor(77, 1), nullptr);
  ASSERT_NE(forwarded.find_island_descriptor(ia::IslandId::assigned(5), 123456789u, 2),
            nullptr);
  ASSERT_NE(forwarded.find_path_descriptor(ia::kProtoFcBgp, ia::keys::kFcCommitments),
            nullptr);
}

TEST(Taxonomy, ScenarioNames) {
  EXPECT_EQ(to_string(Scenario::kCriticalFix), "critical-fix");
  EXPECT_EQ(to_string(Scenario::kCustom), "custom");
  EXPECT_EQ(to_string(Scenario::kReplacement), "replacement");
}

}  // namespace
}  // namespace dbgp::protocols
