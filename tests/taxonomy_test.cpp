#include <gtest/gtest.h>

#include "ia/ids.h"
#include "protocols/taxonomy.h"

namespace dbgp::protocols {
namespace {

TEST(Taxonomy, HasAllFourteenRows) {
  EXPECT_EQ(protocol_taxonomy().size(), 14u);
}

TEST(Taxonomy, GroupCountsMatchTable1) {
  std::size_t fixes = 0, custom = 0, replacements = 0;
  for (const auto& info : protocol_taxonomy()) {
    switch (info.scenario) {
      case Scenario::kCriticalFix: ++fixes; break;
      case Scenario::kCustom: ++custom; break;
      case Scenario::kReplacement: ++replacements; break;
    }
  }
  EXPECT_EQ(fixes, 6u);         // BGPSec, EQ-BGP, Xiao, LISP, R-BGP, Wiser
  EXPECT_EQ(custom, 3u);        // MIRO, Arrow, RON
  EXPECT_EQ(replacements, 5u);  // NIRA, SCION, Pathlets, YAMR, HLP
}

TEST(Taxonomy, ScenarioAssignmentsMatchPaper) {
  EXPECT_EQ(find_protocol_info("Wiser")->scenario, Scenario::kCriticalFix);
  EXPECT_EQ(find_protocol_info("BGPSec")->scenario, Scenario::kCriticalFix);
  EXPECT_EQ(find_protocol_info("MIRO")->scenario, Scenario::kCustom);
  EXPECT_EQ(find_protocol_info("SCION")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("Pathlets")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("HLP")->scenario, Scenario::kReplacement);
  EXPECT_EQ(find_protocol_info("nonexistent"), nullptr);
}

TEST(Taxonomy, ExtraControlInfoMatchesPaper) {
  EXPECT_EQ(find_protocol_info("Wiser")->extra_control_info, "path costs");
  EXPECT_EQ(find_protocol_info("BGPSec")->extra_control_info, "path attestations");
  EXPECT_EQ(find_protocol_info("Pathlets")->extra_control_info, "pathlets");
  EXPECT_EQ(find_protocol_info("LISP")->extra_control_info, "destination ingress IDs");
}

TEST(Taxonomy, DataPlaneNeedsByScenario) {
  for (const auto& info : protocol_taxonomy()) {
    switch (info.scenario) {
      case Scenario::kCriticalFix:
        // Critical fixes use the baseline's network protocol: no custom
        // forwarding, no multi-network-protocol headers.
        EXPECT_FALSE(info.needs_custom_forwarding) << info.name;
        EXPECT_FALSE(info.needs_multi_proto_headers) << info.name;
        break;
      case Scenario::kCustom:
        // Custom protocols must reach specific islands: tunnels.
        EXPECT_TRUE(info.needs_tunnels) << info.name;
        break;
      case Scenario::kReplacement:
        // Path-based/multi-hop replacements forward with custom headers
        // and need multi-network-protocol headers to cross gulfs (HLP is
        // the exception: it keeps hop-based forwarding).
        if (info.name != "HLP") {
          EXPECT_TRUE(info.needs_custom_forwarding) << info.name;
          EXPECT_TRUE(info.needs_multi_proto_headers) << info.name;
        }
        break;
    }
  }
}

TEST(Taxonomy, ImplementedProtocolsCoverEveryScenario) {
  bool fix = false, custom = false, replacement = false;
  for (const auto& info : protocol_taxonomy()) {
    if (info.implemented_as == 0) continue;
    switch (info.scenario) {
      case Scenario::kCriticalFix: fix = true; break;
      case Scenario::kCustom: custom = true; break;
      case Scenario::kReplacement: replacement = true; break;
    }
  }
  EXPECT_TRUE(fix);
  EXPECT_TRUE(custom);
  EXPECT_TRUE(replacement);
}

TEST(Taxonomy, ImplementedIdsAreRealProtocolIds) {
  EXPECT_EQ(find_protocol_info("Wiser")->implemented_as, ia::kProtoWiser);
  EXPECT_EQ(find_protocol_info("BGPSec")->implemented_as, ia::kProtoBgpSec);
  EXPECT_EQ(find_protocol_info("SCION")->implemented_as, ia::kProtoScion);
  EXPECT_EQ(find_protocol_info("Pathlets")->implemented_as, ia::kProtoPathlets);
  EXPECT_EQ(find_protocol_info("MIRO")->implemented_as, ia::kProtoMiro);
  EXPECT_EQ(find_protocol_info("EQ-BGP")->implemented_as, ia::kProtoEqBgp);
  EXPECT_EQ(find_protocol_info("R-BGP")->implemented_as, ia::kProtoRBgp);
  EXPECT_EQ(find_protocol_info("LISP")->implemented_as, ia::kProtoLisp);
  EXPECT_EQ(find_protocol_info("HLP")->implemented_as, ia::kProtoHlp);
}

TEST(Taxonomy, NineOfFourteenImplemented) {
  std::size_t implemented = 0;
  for (const auto& info : protocol_taxonomy()) implemented += info.implemented_as != 0;
  EXPECT_EQ(implemented, 9u);
}

TEST(Taxonomy, ScenarioNames) {
  EXPECT_EQ(to_string(Scenario::kCriticalFix), "critical-fix");
  EXPECT_EQ(to_string(Scenario::kCustom), "custom");
  EXPECT_EQ(to_string(Scenario::kReplacement), "replacement");
}

}  // namespace
}  // namespace dbgp::protocols
