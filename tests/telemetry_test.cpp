#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "telemetry/json_export.h"
#include "telemetry/metrics.h"
#include "telemetry/timer.h"
#include "telemetry/trace.h"
#include "util/json.h"

namespace dbgp::telemetry {
namespace {

// gtest_discover_tests runs each TEST as its own process, so tests that
// touch the global registry reset it up front without racing each other.
void fresh_registry() {
  set_enabled(true);
  MetricsRegistry::global().reset();
}

TEST(Counter, IncrementAndReset) {
  fresh_registry();
  auto& c = MetricsRegistry::global().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, DisabledRegistryIgnoresUpdates) {
  fresh_registry();
  auto& c = MetricsRegistry::global().counter("test.counter");
  set_enabled(false);
  c.inc(100);
  EXPECT_EQ(c.value(), 0u);
  set_enabled(true);
  c.inc(1);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Gauge, TracksValueAndHighWater) {
  fresh_registry();
  auto& g = MetricsRegistry::global().gauge("test.gauge");
  g.set(5);
  g.add(3);
  EXPECT_EQ(g.value(), 8);
  EXPECT_EQ(g.high_water(), 8);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.high_water(), 8);  // high water survives the drop
  g.set(1);
  EXPECT_EQ(g.high_water(), 8);
}

TEST(Histogram, CountsSumsAndBuckets) {
  fresh_registry();
  auto& h = MetricsRegistry::global().histogram("test.hist", {1.0, 10.0, 100.0});
  h.record(0.5);
  h.record(5.0);
  h.record(50.0);
  h.record(500.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 555.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(Histogram, PercentileInterpolatesAndClamps) {
  fresh_registry();
  auto& h = MetricsRegistry::global().histogram("test.hist", {1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 100; ++i) h.record(1.5);  // all in the (1,2] bucket
  const double p50 = h.percentile(50.0);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // Clamped to observed extremes: every sample is 1.5.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1.5);
}

TEST(Histogram, EmptyReturnsZero) {
  fresh_registry();
  auto& h = MetricsRegistry::global().histogram("test.hist");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExponentialBoundsCoverRange) {
  const auto bounds = Histogram::exponential_bounds(1.0, 100.0, 2.0);
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 100.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(Registry, SameNameReturnsSameMetric) {
  fresh_registry();
  auto& reg = MetricsRegistry::global();
  EXPECT_EQ(&reg.counter("a"), &reg.counter("a"));
  EXPECT_EQ(&reg.gauge("b"), &reg.gauge("b"));
  EXPECT_EQ(&reg.histogram("c"), &reg.histogram("c"));
}

TEST(Registry, ResetZeroesButKeepsPointersValid) {
  fresh_registry();
  auto& reg = MetricsRegistry::global();
  auto& c = reg.counter("keep.me");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  c.inc(2);
  EXPECT_EQ(reg.counter("keep.me").value(), 2u);
}

TEST(Registry, SnapshotIsSortedByName) {
  fresh_registry();
  auto& reg = MetricsRegistry::global();
  reg.counter("z.last").inc();
  reg.counter("a.first").inc(3);
  const auto snap = reg.snapshot();
  ASSERT_GE(snap.counters.size(), 2u);
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  }
  const auto* a = snap.find_counter("a.first");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->value, 3u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
}

TEST(Timers, ScopedTimerRecordsAndSimTimerIsDeterministic) {
  fresh_registry();
  auto& wall = MetricsRegistry::global().histogram("test.wall");
  { ScopedTimer t(&wall); }
  EXPECT_EQ(wall.count(), 1u);
  EXPECT_GE(wall.min(), 0.0);

  auto& sim = MetricsRegistry::global().histogram("test.sim");
  SimTimer st(&sim, 10.0);
  st.stop(12.5);
  st.stop(99.0);  // idempotent: second stop is ignored
  EXPECT_EQ(sim.count(), 1u);
  EXPECT_DOUBLE_EQ(sim.sum(), 2.5);
}

TEST(Timers, DisabledScopedTimerRecordsNothing) {
  fresh_registry();
  auto& wall = MetricsRegistry::global().histogram("test.wall");
  set_enabled(false);
  { ScopedTimer t(&wall); }
  set_enabled(true);
  EXPECT_EQ(wall.count(), 0u);
}

TEST(Tracer, RecordsAndEnforcesLimit) {
  PropagationTracer tracer(/*limit=*/2);
  TraceEvent e;
  e.from_as = 1;
  e.to_as = 2;
  e.frame_type = "announce";
  tracer.record(e);
  tracer.record(e);
  tracer.record(e);  // beyond the limit: counted, not stored
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// -- JSON ---------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,null,"x\n"],"c":{"nested":-2.5},"d":1e3})";
  const auto v = util::json::Value::parse(text);
  EXPECT_DOUBLE_EQ(v.number_or("a", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(v.number_or("d", 0.0), 1000.0);
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_EQ(v.find("b")->as_array().size(), 3u);
  EXPECT_EQ(v.find("b")->as_array()[2].as_string(), "x\n");
  // Round trip: re-parsing the dump yields the same dump.
  const std::string once = v.dump();
  EXPECT_EQ(util::json::Value::parse(once).dump(), once);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(util::json::Value::parse("{"), std::runtime_error);
  EXPECT_THROW(util::json::Value::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(util::json::Value::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(util::json::Value::parse("nul"), std::runtime_error);
}

TEST(Json, SnapshotRoundTrip) {
  fresh_registry();
  auto& reg = MetricsRegistry::global();
  reg.counter("rt.counter").inc(42);
  reg.gauge("rt.gauge").set(7);
  auto& h = reg.histogram("rt.hist", {1.0, 10.0});
  h.record(0.5);
  h.record(20.0);

  const auto snap = reg.snapshot();
  const auto restored = snapshot_from_json(to_json(snap));

  const auto* c = restored.find_counter("rt.counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->value, 42u);
  const auto* g = restored.find_gauge("rt.gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 7);
  EXPECT_EQ(g->high_water, 7);
  const auto* rh = restored.find_histogram("rt.hist");
  ASSERT_NE(rh, nullptr);
  EXPECT_EQ(rh->count, 2u);
  EXPECT_DOUBLE_EQ(rh->sum, 20.5);
  ASSERT_EQ(rh->buckets.size(), 3u);
  EXPECT_EQ(rh->buckets[0], 1u);
  EXPECT_EQ(rh->buckets[2], 1u);  // overflow
}

TEST(Json, TraceExportShape) {
  PropagationTracer tracer;
  TraceEvent e;
  e.time = 0.25;
  e.from_as = 1;
  e.to_as = 2;
  e.frame_type = "announce";
  e.prefix = "10.0.0.0/8";
  e.frame_bytes = 40;
  e.ia_bytes = 36;
  e.protocols = {"bgp", "wiser"};
  e.understood = true;
  tracer.record(e);

  const auto v = to_json(tracer);
  ASSERT_NE(v.find("events"), nullptr);
  const auto& events = v.find("events")->as_array();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].number_or("time", 0.0), 0.25);
  EXPECT_EQ(events[0].string_or("frame", ""), "announce");
  EXPECT_EQ(events[0].find("protocols")->as_array().size(), 2u);
  EXPECT_TRUE(events[0].find("understood")->as_bool());
  EXPECT_DOUBLE_EQ(v.number_or("dropped", -1.0), 0.0);
}

// -- Integration: registry counters vs legacy DbgpStats -----------------------

// The Figure 8 pathlet scenario (scenarios/figure8_pathlets.dbgp), inlined so
// the test does not depend on the working directory.
constexpr const char* kFigure8Pathlets = R"(
as 1 island=A protocol=pathlets
as 2 island=A protocol=pathlets
as 7
as 9 island=B protocol=pathlets

pathlet 2 1 vias=101-102
pathlet 2 2 vias=102-104 delivers=131.1.4.0/24
pathlet 2 3 vias=101-103
pathlet 2 4 vias=103-104 delivers=131.1.4.0/24
pathlet 2 50 vias=101-102-104 delivers=131.1.4.0/24

link 1 2 same-island
link 2 7
link 7 9

originate 1 131.1.4.0/24

expect reachable 9 131.1.4.0/24
expect pathlets 9 131.1.4.0/24 5
expect descriptor 9 131.1.4.0/24 pathlets
)";

TEST(Integration, RegistryCountersMatchLegacyDbgpStats) {
  fresh_registry();
  const auto scenario = scenario::parse_scenario(kFigure8Pathlets);
  scenario::Runner runner;
  runner.enable_tracing();
  runner.build(scenario);
  const auto result = runner.run();
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(result.all_passed());

  // Sum the legacy per-speaker stats across every AS; the registry
  // aggregates the same counters process-wide.
  core::DbgpStats total;
  for (const auto asn : runner.network().as_numbers()) {
    const auto& s = runner.network().speaker(asn).stats();
    total.ias_received += s.ias_received;
    total.ias_sent += s.ias_sent;
    total.withdraws_received += s.withdraws_received;
    total.withdraws_sent += s.withdraws_sent;
    total.dropped_by_global_filter += s.dropped_by_global_filter;
    total.rejected_by_module += s.rejected_by_module;
    total.lookup_fetches += s.lookup_fetches;
    total.lookup_misses += s.lookup_misses;
    total.bytes_sent += s.bytes_sent;
    total.bytes_received += s.bytes_received;
  }
  EXPECT_GT(total.ias_received, 0u);

  const auto snap = MetricsRegistry::global().snapshot();
  const auto counter = [&](const char* name) -> std::uint64_t {
    const auto* c = snap.find_counter(std::string("dbgp.speaker.") + name);
    return c != nullptr ? c->value : 0;
  };
  EXPECT_EQ(counter("ias_received"), total.ias_received);
  EXPECT_EQ(counter("ias_sent"), total.ias_sent);
  EXPECT_EQ(counter("withdraws_received"), total.withdraws_received);
  EXPECT_EQ(counter("withdraws_sent"), total.withdraws_sent);
  EXPECT_EQ(counter("dropped_by_global_filter"), total.dropped_by_global_filter);
  EXPECT_EQ(counter("rejected_by_module"), total.rejected_by_module);
  EXPECT_EQ(counter("lookup_fetches"), total.lookup_fetches);
  EXPECT_EQ(counter("lookup_misses"), total.lookup_misses);
  EXPECT_EQ(counter("bytes_sent"), total.bytes_sent);
  EXPECT_EQ(counter("bytes_received"), total.bytes_received);

  // The codec histograms saw every encode/decode the run performed.
  const auto* decode = snap.find_histogram("dbgp.codec.decode_seconds");
  ASSERT_NE(decode, nullptr);
  EXPECT_GT(decode->count, 0u);

  // Tracing captured the propagation hop by hop.
  const auto events = runner.tracer().events();
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].frame_type, "announce");
  EXPECT_GT(events[0].ia_bytes, 0u);
  EXPECT_EQ(events[0].prefix, "131.1.4.0/24");
}

}  // namespace
}  // namespace dbgp::telemetry
