// Concurrency suite for the deterministic parallel sweep engine's execution
// substrate (util/thread_pool.h). Built as its own binary so CI can select
// it with `ctest -L concurrency` and re-run it under ThreadSanitizer via the
// dbgp_tsan_check target (README "Build & test").
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace dbgp::util {
namespace {

TEST(ThreadPool, StartStopRepeatedly) {
  for (int round = 0; round < 3; ++round) {
    for (std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
      ThreadPool pool(threads);  // construct + destroy without ever submitting
      EXPECT_GE(pool.size(), 1u);
    }
  }
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
  EXPECT_EQ(ThreadPool(1).size(), 1u);
  EXPECT_EQ(ThreadPool(6).size(), 6u);
}

TEST(ThreadPool, EmptyRangeIsNoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, 0, 1, [&](std::size_t) { ran = true; });
  pool.parallel_for(10, 10, 0, [&](std::size_t) { ran = true; });
  pool.parallel_for(10, 3, 5, [&](std::size_t) { ran = true; });  // begin > end
  EXPECT_FALSE(ran);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.wakeups, 0u);  // nobody was woken for nothing
}

TEST(ThreadPool, SingleThreadedPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(100, 0);
  std::vector<std::size_t> order;
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t i) {
    ++hits[i];
    order.push_back(i);  // safe: no workers exist
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  // Inline execution visits indices in order — "threads=1 is today's
  // sequential behaviour", not merely equivalent results.
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(pool.stats().wakeups, 0u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnceUnderRandomizedChunks) {
  ThreadPool pool(4);
  Rng rng(2024);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 1 + rng.next_below(700);
    const std::size_t chunk = rng.next_below(4) == 0 ? 0 : 1 + rng.next_below(n + 8);
    std::vector<std::unique_ptr<std::atomic<int>>> hits;
    hits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      hits.push_back(std::make_unique<std::atomic<int>>(0));
    }
    pool.parallel_for(0, n, chunk, [&](std::size_t i) {
      hits[i]->fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i]->load(), 1) << "n=" << n << " chunk=" << chunk << " i=" << i;
    }
  }
}

TEST(ThreadPool, NonZeroBeginCoversExactRange) {
  ThreadPool pool(3);
  std::vector<std::unique_ptr<std::atomic<int>>> hits;
  for (std::size_t i = 0; i < 50; ++i) {
    hits.push_back(std::make_unique<std::atomic<int>>(0));
  }
  pool.parallel_for(17, 41, 5, [&](std::size_t i) {
    hits[i]->fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[i]->load(), (i >= 17 && i < 41) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 256, 3,
                        [](std::size_t i) {
                          if (i == 97) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // The pool must stay fully usable after a failed job.
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(0, 100, 4,
                    [&](std::size_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, ExceptionPropagatesFromInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(0, 10, 1,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("inline boom");
                                 }),
               std::runtime_error);
  int count = 0;
  pool.parallel_for(0, 5, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 5);
}

TEST(ThreadPool, NestedSubmitRunsInlineWithoutDeadlock) {
  // A task that re-enters parallel_for on the same (fully busy) pool would
  // deadlock if the nested call queued; the guard runs it inline instead.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t) {
    pool.parallel_for(0, 16, 2, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8u * 16u);
}

TEST(ThreadPool, ThreadsExceedingTasksWakeOnlyWhatCanWork) {
  ThreadPool pool(8);
  const auto before = pool.stats();
  std::atomic<int> ran{0};
  pool.parallel_for(0, 3, 1,
                    [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(ran.load(), 3);
  const auto after = pool.stats();
  EXPECT_EQ(after.tasks - before.tasks, 3u);
  // 3 chunks, one taken by the caller: at most 2 workers may ever wake.
  EXPECT_LE(after.wakeups - before.wakeups, 2u);
}

TEST(ThreadPool, SingleChunkJobRunsInlineWithoutWakeups) {
  ThreadPool pool(8);
  int ran = 0;
  pool.parallel_for(0, 4, 8, [&](std::size_t) { ++ran; });  // one chunk covers all
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(pool.stats().wakeups, 0u);
}

TEST(ThreadPool, WaitObserverSeesEveryWakeup) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> observed{0};
  pool.set_wait_observer(
      [&](std::uint64_t) { observed.fetch_add(1, std::memory_order_relaxed); });
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    pool.parallel_for(0, 64, 1,
                      [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
    EXPECT_EQ(ran.load(), 64);
  }
  EXPECT_EQ(observed.load(), pool.stats().wakeups);
}

TEST(ThreadPool, SnapshotAndResetReportsPerIntervalDeltas) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  pool.parallel_for(0, 64, 1,
                    [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); });
  ASSERT_EQ(ran.load(), 64);

  const auto first = pool.snapshot_and_reset();
  EXPECT_EQ(first.tasks, 64u);
  EXPECT_EQ(first.tasks, pool.stats().tasks + first.tasks);  // counters zeroed

  // A quiet interval reports zeros; the cumulative view is gone by design.
  const auto quiet = pool.snapshot_and_reset();
  EXPECT_EQ(quiet.tasks, 0u);
  EXPECT_EQ(quiet.wakeups, 0u);
  EXPECT_EQ(quiet.wait_ns, 0u);

  // The next interval counts only its own work.
  pool.parallel_for(0, 10, 1, [&](std::size_t) {});
  const auto second = pool.snapshot_and_reset();
  EXPECT_EQ(second.tasks, 10u);
}

TEST(SplitSeed, PureFunctionOfBaseAndIndex) {
  const std::uint64_t first = split_seed(42, 7);
  split_seed(1, 1);
  split_seed(99, 3);
  EXPECT_EQ(split_seed(42, 7), first);  // no hidden state

  // Distinct tasks get distinct streams (spot check, not a proof).
  EXPECT_NE(split_seed(42, 0), split_seed(42, 1));
  EXPECT_NE(split_seed(42, 0), split_seed(43, 0));
  EXPECT_NE(split_seed(0, 0), split_seed(0, 1));
}

TEST(SplitSeed, GoldenValuesLockTheScheme) {
  // These values pin the seed-splitting scheme itself: if they change, every
  // recorded sweep baseline (EXPERIMENTS.md tables, BENCH_*.json) silently
  // shifts. Bump them only with those artifacts.
  EXPECT_EQ(split_seed(42, 0), UINT64_C(0xcd660223203cea64));
  EXPECT_EQ(split_seed(42, 9), UINT64_C(0x2818718db33bd56c));
  EXPECT_EQ(split_seed(0, 0), UINT64_C(0xca8348bb5eeaa490));
  // And the first draw of a split-seeded Rng — the exact stream the sweep's
  // per-(trial, level) adoption draws consume.
  Rng rng(split_seed(42 ^ 0xadULL, 0));
  EXPECT_EQ(rng.next_u32(), 0xc1283babu);
}

}  // namespace
}  // namespace dbgp::util
