#include <gtest/gtest.h>

#include "topology/adoption.h"
#include "topology/hierarchy.h"
#include "topology/waxman.h"

namespace dbgp::topology {
namespace {

TEST(AsGraph, EdgesAreSymmetricWithInverseRelationship) {
  AsGraph g(3);
  g.add_edge(0, 1, Relationship::kProviderOf);
  ASSERT_EQ(g.neighbors(0).size(), 1u);
  ASSERT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].rel, Relationship::kProviderOf);
  EXPECT_EQ(g.neighbors(1)[0].rel, Relationship::kCustomerOf);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(AsGraph, DuplicateEdgeIgnored) {
  AsGraph g(2);
  g.add_edge(0, 1, Relationship::kPeerOf);
  g.add_edge(0, 1, Relationship::kProviderOf);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.neighbors(0)[0].rel, Relationship::kPeerOf);  // first wins
}

TEST(AsGraph, SelfLoopRejected) {
  AsGraph g(2);
  EXPECT_THROW(g.add_edge(1, 1, Relationship::kPeerOf), std::invalid_argument);
}

TEST(AsGraph, StubHasNoCustomers) {
  AsGraph g(3);
  g.add_edge(0, 1, Relationship::kProviderOf);  // 0 provides for 1
  g.add_edge(0, 2, Relationship::kProviderOf);
  EXPECT_FALSE(g.is_stub(0));
  EXPECT_TRUE(g.is_stub(1));
  EXPECT_TRUE(g.is_stub(2));
  EXPECT_EQ(g.stubs().size(), 2u);
}

TEST(Waxman, PaperConfigurationIsConnected) {
  util::Rng rng(42);
  WaxmanConfig config;  // 1000 nodes, alpha 0.15, beta 0.25
  const AsGraph g = generate_waxman(config, rng);
  EXPECT_EQ(g.size(), 1000u);
  EXPECT_TRUE(g.connected());
  // Incremental growth with m=2: edge count close to 2n.
  EXPECT_GE(g.edge_count(), g.size() - 1);
  EXPECT_LE(g.edge_count(), 2 * g.size());
}

TEST(Waxman, DeterministicForSeed) {
  WaxmanConfig config;
  config.nodes = 200;
  util::Rng rng_a(7), rng_b(7), rng_c(8);
  const AsGraph a = generate_waxman(config, rng_a);
  const AsGraph b = generate_waxman(config, rng_b);
  const AsGraph c = generate_waxman(config, rng_c);
  ASSERT_EQ(a.size(), b.size());
  std::size_t identical = 0, total = 0;
  for (NodeId u = 0; u < a.size(); ++u) {
    ASSERT_EQ(a.degree(u), b.degree(u));
    total += a.degree(u);
    identical += a.degree(u) == c.degree(u) ? 1 : 0;
  }
  EXPECT_GT(total, 0u);
  EXPECT_LT(identical, a.size());  // different seed -> different graph
}

TEST(Waxman, EveryNodeHasAnEdge) {
  util::Rng rng(13);
  WaxmanConfig config;
  config.nodes = 300;
  const AsGraph g = generate_waxman(config, rng);
  for (NodeId u = 0; u < g.size(); ++u) EXPECT_GE(g.degree(u), 1u) << u;
}

TEST(Waxman, AnnotatesOnlyCustomerProvider) {
  // The paper's topology has customer/provider edges but no peering.
  util::Rng rng(21);
  WaxmanConfig config;
  config.nodes = 200;
  const AsGraph g = generate_waxman(config, rng);
  for (NodeId u = 0; u < g.size(); ++u) {
    for (const Edge& e : g.neighbors(u)) {
      EXPECT_NE(e.rel, Relationship::kPeerOf);
    }
  }
}

TEST(Hierarchy, StructureMatchesConfig) {
  util::Rng rng(5);
  HierarchyConfig config;
  const Hierarchy h = generate_hierarchy(config, rng);
  EXPECT_EQ(h.graph.size(), config.tier1 + config.transits + config.stubs);
  EXPECT_TRUE(h.graph.connected());
  // Tier-1s form a full peer mesh.
  for (std::size_t i = 0; i < config.tier1; ++i) {
    std::size_t peers = 0;
    for (const Edge& e : h.graph.neighbors(static_cast<NodeId>(i))) {
      peers += e.rel == Relationship::kPeerOf ? 1 : 0;
    }
    EXPECT_GE(peers, config.tier1 - 1);
  }
  // Stubs never provide transit.
  for (NodeId u = static_cast<NodeId>(config.tier1 + config.transits); u < h.graph.size();
       ++u) {
    EXPECT_TRUE(h.graph.is_stub(u));
  }
}

TEST(Adoption, FractionRounding) {
  util::Rng rng(3);
  const auto upgraded = random_adoption(1000, 0.3, rng);
  EXPECT_EQ(std::count(upgraded.begin(), upgraded.end(), true), 300);
  const auto none = random_adoption(1000, 0.0, rng);
  EXPECT_EQ(std::count(none.begin(), none.end(), true), 0);
  const auto all = random_adoption(1000, 1.0, rng);
  EXPECT_EQ(std::count(all.begin(), all.end(), true), 1000);
}

TEST(Adoption, IslandsAreConnectedComponents) {
  // 0-1-2 chain upgraded, 3 gulf, 4-5 upgraded pair.
  AsGraph g(6);
  g.add_edge(0, 1, Relationship::kProviderOf);
  g.add_edge(1, 2, Relationship::kProviderOf);
  g.add_edge(2, 3, Relationship::kProviderOf);
  g.add_edge(3, 4, Relationship::kProviderOf);
  g.add_edge(4, 5, Relationship::kProviderOf);
  std::vector<bool> upgraded{true, true, true, false, true, true};
  std::vector<std::size_t> sizes;
  const auto component = upgraded_islands(g, upgraded, sizes);
  EXPECT_EQ(sizes.size(), 2u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[1], component[2]);
  EXPECT_EQ(component[3], -1);
  EXPECT_EQ(component[4], component[5]);
  EXPECT_NE(component[0], component[4]);
  EXPECT_EQ(sizes[0] + sizes[1], 5u);
}

TEST(Adoption, IslandsMergeAsAdoptionGrows) {
  // The Figure-9 mechanism: higher adoption -> larger max island.
  util::Rng topo_rng(11);
  WaxmanConfig config;
  config.nodes = 300;
  const AsGraph g = generate_waxman(config, topo_rng);
  std::size_t previous_max = 0;
  for (double level : {0.2, 0.5, 0.9}) {
    util::Rng rng(99);
    const auto upgraded = random_adoption(g.size(), level, rng);
    std::vector<std::size_t> sizes;
    upgraded_islands(g, upgraded, sizes);
    const std::size_t max_island = *std::max_element(sizes.begin(), sizes.end());
    EXPECT_GT(max_island, previous_max);
    previous_max = max_island;
  }
}

}  // namespace
}  // namespace dbgp::topology
