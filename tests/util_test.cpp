#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace dbgp::util {
namespace {

// -- Rng -----------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusiveBounds) {
  Rng rng(3);
  bool lo_hit = false, hi_hit = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    lo_hit = lo_hit || v == -2;
    hi_hit = hi_hit || v == 2;
  }
  EXPECT_TRUE(lo_hit);
  EXPECT_TRUE(hi_hit);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);  // crude uniformity check
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(5);
  auto sample = rng.sample_indices(100, 30);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (auto i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// -- Bytes -----------------------------------------------------------------------

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.put_u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

class VarintRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintRoundTrip, RoundTrips) {
  ByteWriter w;
  w.put_varint(GetParam());
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_varint(), GetParam());
  EXPECT_TRUE(r.at_end());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTrip,
                         ::testing::Values(0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                                           0xffffffffULL, 0xffffffffffffffffULL));

TEST(Bytes, ReadPastEndThrows) {
  ByteWriter w;
  w.put_u16(7);
  ByteReader r(w.bytes());
  r.get_u8();
  EXPECT_THROW(r.get_u32(), DecodeError);
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello world");
  w.put_string("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_string(), "");
}

TEST(Bytes, PatchU16) {
  ByteWriter w;
  const auto at = w.reserve_u16();
  w.put_u32(1);
  w.patch_u16(at, 0xbeef);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u16(), 0xbeef);
}

TEST(Bytes, SubReaderBounds) {
  ByteWriter w;
  w.put_u32(0x01020304);
  ByteReader r(w.bytes());
  ByteReader sub = r.sub_reader(2);
  EXPECT_EQ(sub.get_u16(), 0x0102);
  EXPECT_TRUE(sub.at_end());
  EXPECT_EQ(r.get_u16(), 0x0304);
}

TEST(Bytes, StringLengthBeyondBufferThrows) {
  ByteWriter w;
  w.put_varint(1000);  // claims 1000 bytes
  w.put_u8('x');
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), DecodeError);
}

// -- Strings ----------------------------------------------------------------------

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, JoinInverseOfSplit) {
  EXPECT_EQ(join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, ParseU64) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("12345", v));
  EXPECT_EQ(v, 12345u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("12a", v));
  EXPECT_FALSE(parse_u64("-1", v));
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4096), "4 KB");
  EXPECT_EQ(format_bytes(1024.0 * 1024 * 3), "3 MB");
}

// -- Stats ------------------------------------------------------------------------

TEST(Stats, SummaryBasics) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_GT(s.ci95, 0.0);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const auto s = summarize({42});
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95, 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, PercentileEmptyInput) {
  // Regression: used to index into the empty vector.
  EXPECT_DOUBLE_EQ(percentile({}, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100), 0.0);
}

// -- Flags ------------------------------------------------------------------------

TEST(Flags, ParsesAllForms) {
  // Note: a bare "--flag value" form is greedy, so boolean flags must use
  // "--flag=true", come last, or precede another "--" token.
  const char* argv[] = {"prog", "--alpha=0.5", "--count", "7", "pos1", "--verbose"};
  Flags flags;
  std::string error;
  ASSERT_TRUE(flags.parse(6, argv, error)) << error;
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0), 0.5);
  EXPECT_EQ(flags.get_int("count", 0), 7);
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_string("missing", "dflt"), "dflt");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, ExplicitFalse) {
  const char* argv[] = {"prog", "--feature=false"};
  Flags flags;
  std::string error;
  ASSERT_TRUE(flags.parse(2, argv, error));
  EXPECT_FALSE(flags.get_bool("feature", true));
}

TEST(Flags, StrictModeRejectsUnknownFlags) {
  const char* argv[] = {"prog", "--quiet", "--trheads=4", "file.dbgp"};
  Flags flags;
  flags.allow({"quiet", "threads"});
  std::string error;
  EXPECT_FALSE(flags.parse(4, argv, error));
  EXPECT_NE(error.find("trheads"), std::string::npos) << error;
}

TEST(Flags, StrictModeAcceptsDeclaredAndPositional) {
  const char* argv[] = {"prog", "--threads=4", "a.dbgp", "b.dbgp", "--quiet"};
  Flags flags;
  flags.allow({"quiet", "threads"});
  std::string error;
  ASSERT_TRUE(flags.parse(5, argv, error)) << error;
  EXPECT_EQ(flags.get_int("threads", 0), 4);
  EXPECT_TRUE(flags.get_bool("quiet", false));
  EXPECT_EQ(flags.positional().size(), 2u);
}

TEST(Flags, StrictModePrefixWildcard) {
  const char* argv[] = {"prog", "--benchmark_filter=x", "--benchmark_repetitions=3",
                        "--other"};
  Flags flags;
  flags.allow({"benchmark_*"});
  std::string error;
  EXPECT_FALSE(flags.parse(4, argv, error));
  EXPECT_NE(error.find("other"), std::string::npos);

  Flags ok;
  ok.allow({"benchmark_*"});
  ASSERT_TRUE(ok.parse(3, argv, error)) << error;
  EXPECT_EQ(ok.get_string("benchmark_filter", ""), "x");
}

TEST(Flags, PermissiveWithoutAllowList) {
  const char* argv[] = {"prog", "--anything=goes"};
  Flags flags;
  std::string error;
  ASSERT_TRUE(flags.parse(2, argv, error)) << error;
  EXPECT_EQ(flags.get_string("anything", ""), "goes");
}

}  // namespace
}  // namespace dbgp::util
