#include <gtest/gtest.h>

#include "protocols/bgp_module.h"
#include "protocols/wiser.h"
#include "simnet/network.h"

namespace dbgp::protocols {
namespace {

using core::DbgpConfig;
using core::LookupService;
using simnet::DbgpNetwork;

TEST(WiserPayloads, CostRoundTrip) {
  for (std::uint64_t cost : {0ULL, 1ULL, 100ULL, 1ULL << 40}) {
    EXPECT_EQ(decode_wiser_cost(encode_wiser_cost(cost)), cost);
  }
}

TEST(WiserPayloads, PortalRoundTrip) {
  const net::Ipv4Address portal(163, 42, 5, 0);
  EXPECT_EQ(decode_wiser_portal(encode_wiser_portal(portal)), portal);
}

TEST(WiserCostExchange, ScalingFactorFromReports) {
  LookupService portal;
  WiserCostExchange exchange(&portal);
  const auto a = ia::IslandId::assigned(1);
  const auto b = ia::IslandId::assigned(2);
  // Before any reports: guess 1.0.
  EXPECT_DOUBLE_EQ(exchange.scaling_factor(b, a), 1.0);
  // Island A says it advertised mean cost 200; B observed mean 50:
  // B must scale A's costs by 4 to compare in its own units.
  exchange.report_advertised(a, b, 2000, 10);
  exchange.report_received(b, a, 500, 10);
  EXPECT_DOUBLE_EQ(exchange.scaling_factor(b, a), 4.0);
}

TEST(WiserModule, ComparatorPrefersLowerCost) {
  WiserModule module({ia::IslandId::assigned(1), 1, net::Ipv4Address(1, 1, 1, 1)}, nullptr);
  core::IaRoute cheap, expensive;
  cheap.ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                               encode_wiser_cost(6));
  cheap.ia.path_vector.prepend_as(1);
  cheap.ia.path_vector.prepend_as(2);
  cheap.ia.path_vector.prepend_as(3);
  expensive.ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                                   encode_wiser_cost(101));
  expensive.ia.path_vector.prepend_as(1);
  EXPECT_TRUE(module.better(cheap, expensive));   // cost wins over length
  EXPECT_FALSE(module.better(expensive, cheap));
}

TEST(WiserModule, MissingCostTreatedAsZero) {
  WiserModule module({ia::IslandId::assigned(1), 1, net::Ipv4Address(1, 1, 1, 1)}, nullptr);
  core::IaRoute no_info;
  EXPECT_EQ(WiserModule::path_cost(no_info), 0u);
}

// Figure 1 / Figure 8: a Wiser source island separated from the Wiser
// destination island by a BGP gulf. The short path has a high Wiser cost
// (101), the long path a low one (6).
//
//           E1(2,cost100) -- 4 (gulf) ------\
//   D(1) <                                   > S(9, Wiser)
//           E2(3,cost5)  -- 5 (gulf) - 6 ---/
struct WiserGulfFixture {
  LookupService lookup;
  DbgpNetwork net{&lookup};
  const ia::IslandId island_a = ia::IslandId::assigned(0xA);
  const ia::IslandId island_b = ia::IslandId::assigned(0xB);
  const net::Prefix dest = *net::Prefix::parse("128.6.0.0/16");

  void add_wiser_as(bgp::AsNumber asn, ia::IslandId island, std::uint64_t cost) {
    DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    config.island = island;
    config.island_protocol = ia::kProtoWiser;
    config.active_protocol = ia::kProtoWiser;
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<WiserModule>(
        WiserModule::Config{island, cost, net::Ipv4Address(asn)}, nullptr));
    speaker.add_module(std::make_unique<BgpModule>());
  }

  void add_gulf_as(bgp::AsNumber asn, bool legacy_strips_wiser) {
    DbgpConfig config;
    config.asn = asn;
    config.next_hop = net::Ipv4Address(asn);
    auto& speaker = net.add_as(config);
    speaker.add_module(std::make_unique<BgpModule>());
    if (legacy_strips_wiser) {
      // The plain-BGP baseline: a legacy speaker cannot carry Wiser's
      // control information, so it is dropped at the gulf.
      speaker.import_filters().add("legacy-strip",
                                   core::strip_protocol_filter(ia::kProtoWiser));
    }
  }

  void build(bool legacy_gulf) {
    add_wiser_as(1, island_a, 1);
    add_wiser_as(2, island_a, 100);  // E1: expensive internal path
    add_wiser_as(3, island_a, 5);    // E2: cheap internal path
    add_gulf_as(4, legacy_gulf);
    add_gulf_as(5, legacy_gulf);
    add_gulf_as(6, legacy_gulf);
    add_wiser_as(9, island_b, 1);  // S
    net.add_link(1, 2, /*same_island=*/true);
    net.add_link(1, 3, /*same_island=*/true);
    net.add_link(2, 4);
    net.add_link(4, 9);
    net.add_link(3, 5);
    net.add_link(5, 6);
    net.add_link(6, 9);
    net.originate(1, dest);
    net.run_to_convergence();
  }
};

TEST(WiserGulf, DbgpBaselineSelectsLowCostPath) {
  WiserGulfFixture fix;
  fix.build(/*legacy_gulf=*/false);
  const auto* best = fix.net.speaker(9).best(fix.dest);
  ASSERT_NE(best, nullptr);
  // S sees the Wiser path costs (passed through the gulf) and picks the
  // longer, cheaper path via AS 6 <- 5 <- 3.
  EXPECT_TRUE(best->ia.path_vector.contains_as(3)) << best->ia.path_vector.to_string();
  EXPECT_FALSE(best->ia.path_vector.contains_as(2));
  EXPECT_EQ(WiserModule::path_cost(*best), 6u);  // 5 (E2) + 1 (D)
  // The island descriptor with the cost-exchange portal also crossed.
  EXPECT_NE(best->ia.find_island_descriptor(fix.island_a, ia::kProtoWiser,
                                            ia::keys::kWiserPortalAddr),
            nullptr);
}

TEST(WiserGulf, BgpBaselineSelectsHighCostShortPath) {
  WiserGulfFixture fix;
  fix.build(/*legacy_gulf=*/true);
  const auto* best = fix.net.speaker(9).best(fix.dest);
  ASSERT_NE(best, nullptr);
  // Costs were dropped in the gulf: S must fall back to shortest path,
  // which is the expensive one via E1 (AS 2) — exactly Figure 1's problem.
  EXPECT_TRUE(best->ia.path_vector.contains_as(2)) << best->ia.path_vector.to_string();
  EXPECT_EQ(WiserModule::path_cost(*best), 0u);  // invisible
}

TEST(WiserGulf, ScalingAppliedToIncomingCosts) {
  // Island A's units are 10x island B's. After a cost exchange, B scales.
  LookupService portal;
  WiserCostExchange exchange(&portal);
  const auto a = ia::IslandId::assigned(1), b = ia::IslandId::assigned(2);
  exchange.report_advertised(a, b, 1000, 1);  // A claims it sent cost 1000
  exchange.report_received(b, a, 100, 1);     // B measured 100

  WiserModule module({b, 1, net::Ipv4Address(9, 9, 9, 9)}, &exchange);
  core::IaRoute route;
  route.ia.destination = *net::Prefix::parse("10.0.0.0/8");
  route.ia.set_path_descriptor(ia::kProtoWiser, ia::keys::kWiserPathCost,
                               encode_wiser_cost(50));
  route.ia.add_membership({a, {}, ia::kProtoWiser});
  ASSERT_TRUE(module.import_filter(route));
  EXPECT_EQ(WiserModule::path_cost(route), 500u);  // 50 * (1000/100)
}

}  // namespace
}  // namespace dbgp::protocols
