// bench_compare: regression gate over two BENCH_*.json files.
//
//   bench_compare <baseline.json> <candidate.json> [--threshold 0.10]
//
// Compares per-benchmark throughput (the "prefixes/s" counter when present,
// ops_per_sec otherwise) and exits non-zero if any benchmark in the baseline
// lost more than `threshold` (default 10%) of its throughput, or disappeared
// from the candidate. Counters named "reconverge*" (bench_churn's simulated
// re-convergence times), "sweep_wall*" (the sweep benches' wall-clock
// seconds), "bytes_per_prefix*" / "load_wall*" (bench_memory's RIB
// residency and table-load time), and "observe_overhead*" (bench_observer's
// sampler+oracle throughput tax) are additionally gated the other way
// around: they regress by *growing* more than the threshold. Improvements and new
// benchmarks are reported but never fail the gate, so the committed BENCH
// file can ratchet forward. Wired up as the `dbgp_bench_check` CMake target.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>

#include "util/json.h"

namespace {

using dbgp::util::json::Value;

double throughput_of(const Value& bench) {
  if (const Value* counters = bench.find("counters")) {
    const double prefixes = counters->number_or("prefixes/s", -1.0);
    if (prefixes > 0) return prefixes;
  }
  return bench.number_or("ops_per_sec", 0.0);
}

// A gated number: throughput (higher is better) or a latency-style counter
// (lower is better).
struct Metric {
  double value = 0.0;
  bool lower_is_better = false;
};

bool is_lower_better_counter(const std::string& counter) {
  return counter.rfind("reconverge", 0) == 0 || counter.rfind("sweep_wall", 0) == 0 ||
         counter.rfind("bytes_per_prefix", 0) == 0 || counter.rfind("load_wall", 0) == 0 ||
         counter.rfind("observe_overhead", 0) == 0;
}

// name -> metric for every entry of the file's "benchmarks" array; latency
// counters appear as "<bench>:<counter>" rows next to the throughput row.
std::map<std::string, Metric> load(const std::string& path) {
  const Value doc = dbgp::util::json::parse_file(path);
  const Value* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    throw std::runtime_error(path + ": no \"benchmarks\" array");
  }
  std::map<std::string, Metric> out;
  for (const Value& bench : benchmarks->as_array()) {
    const std::string name = bench.string_or("name", "");
    if (name.empty()) continue;
    out[name] = {throughput_of(bench), false};
    const Value* counters = bench.find("counters");
    if (counters == nullptr || !counters->is_object()) continue;
    for (const auto& [counter, value] : counters->as_object()) {
      if (is_lower_better_counter(counter) && value.is_number()) {
        out[name + ":" + counter] = {value.as_double(), true};
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.10;
  const char* paths[2] = {nullptr, nullptr};
  int n_paths = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", argv[i]);
      n_paths = -1;
      break;
    } else if (n_paths < 2) {
      paths[n_paths++] = argv[i];
    } else {
      std::fprintf(stderr, "bench_compare: unexpected argument %s\n", argv[i]);
      n_paths = -1;
      break;
    }
  }
  if (n_paths != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <candidate.json> "
                 "[--threshold 0.10]\n");
    return 2;
  }

  std::map<std::string, Metric> baseline;
  std::map<std::string, Metric> candidate;
  try {
    baseline = load(paths[0]);
    candidate = load(paths[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }

  int regressions = 0;
  std::printf("%-36s %14s %14s %8s\n", "benchmark", "baseline", "candidate", "delta");
  for (const auto& [name, base] : baseline) {
    const auto it = candidate.find(name);
    if (it == candidate.end()) {
      std::printf("%-36s %14.1f %14s %8s  MISSING\n", name.c_str(), base.value, "-", "-");
      ++regressions;
      continue;
    }
    const double cand = it->second.value;
    const double delta = base.value > 0 ? (cand - base.value) / base.value : 0.0;
    // Throughput regresses by dropping; latency-style metrics by growing.
    const bool regressed = base.value > 0 && (base.lower_is_better ? delta > threshold
                                                                   : delta < -threshold);
    std::printf("%-36s %14.3f %14.3f %+7.1f%%%s\n", name.c_str(), base.value, cand,
                delta * 100.0, regressed ? "  REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const auto& [name, cand] : candidate) {
    if (baseline.count(name) == 0) {
      std::printf("%-36s %14s %14.3f %8s  new\n", name.c_str(), "-", cand.value, "-");
    }
  }

  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d benchmark(s) regressed more than %.0f%%\n",
                 regressions, threshold * 100.0);
    return 1;
  }
  std::printf("bench_compare: OK (threshold %.0f%%)\n", threshold * 100.0);
  return 0;
}
