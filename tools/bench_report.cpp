// bench_report — pretty-print one or more BENCH_*.json files.
//
//   bench_report <file.json> [more.json ...]
//
// Shows the per-benchmark throughput table, the headline latency
// percentiles, the busiest telemetry counters from the embedded registry
// snapshot, a per-peer session table (regrouped from the labeled
// "<scope>.<field>|as=N,peer=M" counters), and — when the bench embedded a
// "series" section (telemetry::TimeSeriesSampler::to_json) — the hottest
// time-series rates over the sampled window. Exits 2 on
// unreadable/malformed input.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "util/json.h"

namespace {

using dbgp::util::json::Value;

// Splits "dbgp.peer.updates_in|as=1,peer=2" into base name + label values.
// Returns false for unlabeled names or any other label shape.
bool parse_peer_label(const std::string& name, std::string& base, unsigned long& as,
                      unsigned long& peer) {
  const auto bar = name.find('|');
  if (bar == std::string::npos) return false;
  const std::string labels = name.substr(bar + 1);
  if (labels.compare(0, 3, "as=") != 0) return false;
  const auto comma = labels.find(",peer=");
  if (comma == std::string::npos) return false;
  char* end = nullptr;
  as = std::strtoul(labels.c_str() + 3, &end, 10);
  if (end != labels.c_str() + comma) return false;
  peer = std::strtoul(labels.c_str() + comma + 6, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  base = name.substr(0, bar);
  return true;
}

std::string format_rate(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f G/s", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f M/s", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f k/s", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f /s", v);
  }
  return buf;
}

void report(const std::string& path) {
  const Value root = dbgp::util::json::parse_file(path);
  std::printf("== %s (bench: %s) ==\n", path.c_str(),
              root.string_or("bench", "?").c_str());

  const Value* benches = root.find("benchmarks");
  if (benches != nullptr && benches->is_array()) {
    std::printf("  %-44s %12s %8s %14s %14s\n", "benchmark", "iterations", "threads",
                "time/op", "throughput");
    for (const auto& b : benches->as_array()) {
      const double per_op = b.number_or("time_per_op_s", 0.0);
      // The sweep benches record their parallel width as a "threads" counter;
      // single-threaded benches have no such counter and print "-".
      const Value* bench_counters = b.find("counters");
      const double threads =
          bench_counters != nullptr ? bench_counters->number_or("threads", 0.0) : 0.0;
      char threads_buf[16];
      if (threads > 0) {
        std::snprintf(threads_buf, sizeof threads_buf, "%.0f", threads);
      } else {
        std::snprintf(threads_buf, sizeof threads_buf, "-");
      }
      std::printf("  %-44s %12.0f %8s %11.3f us %14s\n",
                  b.string_or("name", "?").c_str(), b.number_or("iterations", 0.0),
                  threads_buf, per_op * 1e6,
                  format_rate(b.number_or("ops_per_sec", 0.0)).c_str());
    }
  }

  // Speedup-vs-threads: any family of rows sharing a name modulo the
  // "/threads:N" component and carrying a "threads" counter gets a scaling
  // table, normalized to its threads:1 row (the sharded speaker and sweep
  // benches emit exactly this shape).
  if (benches != nullptr && benches->is_array()) {
    struct Row {
      double threads = 0.0;
      double rate = 0.0;
    };
    std::map<std::string, std::vector<Row>> families;
    for (const auto& b : benches->as_array()) {
      const Value* bench_counters = b.find("counters");
      if (bench_counters == nullptr) continue;
      const double threads = bench_counters->number_or("threads", 0.0);
      if (threads <= 0) continue;
      std::string name = b.string_or("name", "");
      const auto at = name.find("/threads:");
      if (at != std::string::npos) {
        const auto next = name.find('/', at + 1);
        name.erase(at, next == std::string::npos ? std::string::npos : next - at);
      }
      families[name].push_back({threads, b.number_or("ops_per_sec", 0.0)});
    }
    for (auto& [name, rows] : families) {
      if (rows.size() < 2) continue;
      std::sort(rows.begin(), rows.end(),
                [](const Row& a, const Row& b) { return a.threads < b.threads; });
      const double base = rows.front().threads == 1.0 ? rows.front().rate : 0.0;
      if (base <= 0) continue;
      std::printf("\n  speedup vs threads — %s\n", name.c_str());
      std::printf("    %8s %14s %8s\n", "threads", "throughput", "speedup");
      for (const Row& row : rows) {
        std::printf("    %8.0f %14s %7.2fx\n", row.threads,
                    format_rate(row.rate).c_str(), row.rate / base);
      }
    }
  }

  std::printf("\n  peak throughput: %s\n",
              format_rate(root.number_or("ops_per_sec", 0.0)).c_str());
  std::printf("  latency (%s): p50 %.3f us, p95 %.3f us, p99 %.3f us\n",
              root.string_or("latency_source", "?").c_str(),
              root.number_or("p50_us", 0.0), root.number_or("p95_us", 0.0),
              root.number_or("p99_us", 0.0));

  const Value* metrics = root.find("metrics");
  const Value* counters = metrics != nullptr ? metrics->find("counters") : nullptr;
  if (counters != nullptr && counters->is_object() && !counters->as_object().empty()) {
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [name, value] : counters->as_object()) {
      if (value.is_number() && value.as_double() > 0.0) {
        rows.emplace_back(name, value.as_double());
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (!rows.empty()) {
      std::printf("\n  top telemetry counters:\n");
      const std::size_t shown = std::min<std::size_t>(rows.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        std::printf("    %-44s %16.0f\n", rows[i].first.c_str(), rows[i].second);
      }
      if (rows.size() > shown) {
        std::printf("    ... %zu more non-zero counters\n", rows.size() - shown);
      }
    }
  }

  // Interner effectiveness (DESIGN.md §14): hit/miss/live for the BGP
  // attribute interner and the IA descriptor-tail interner, when the bench
  // exercised them.
  const Value* gauges = metrics != nullptr ? metrics->find("gauges") : nullptr;
  auto metric = [&](const char* name) {
    double v = counters != nullptr ? counters->number_or(name, 0.0) : 0.0;
    if (v == 0.0 && gauges != nullptr) v = gauges->number_or(name, 0.0);
    return v;
  };
  bool header_printed = false;
  for (const char* prefix : {"dbgp.rib.interner", "dbgp.ia.interner"}) {
    const double hits = metric((std::string(prefix) + ".hits").c_str());
    const double misses = metric((std::string(prefix) + ".misses").c_str());
    if (hits + misses <= 0.0) continue;
    if (!header_printed) {
      std::printf("\n  interner stats:\n");
      std::printf("    %-24s %14s %14s %10s %10s\n", "interner", "hits", "misses",
                  "hit rate", "live");
      header_printed = true;
    }
    std::printf("    %-24s %14.0f %14.0f %9.2f%% %10.0f\n", prefix, hits, misses,
                100.0 * hits / (hits + misses),
                metric((std::string(prefix) + ".live").c_str()));
  }

  // Per-peer session table: the labeled counters regrouped one row per
  // (scope, as, peer) session — the offline twin of the daemon's `peers`
  // verb. Sorted by update volume so the busiest sessions lead.
  {
    std::map<std::tuple<std::string, unsigned long, unsigned long>,
             std::map<std::string, double>> sessions;
    std::string base;
    unsigned long as = 0;
    unsigned long peer = 0;
    auto collect = [&](const Value* table) {
      if (table == nullptr || !table->is_object()) return;
      for (const auto& [name, value] : table->as_object()) {
        if (!value.is_number() || !parse_peer_label(name, base, as, peer)) continue;
        const auto dot = base.rfind('.');
        if (dot == std::string::npos) continue;
        sessions[{base.substr(0, dot), as, peer}][base.substr(dot + 1)] =
            value.as_double();
      }
    };
    collect(counters);
    collect(gauges);
    if (!sessions.empty()) {
      std::vector<std::pair<std::tuple<std::string, unsigned long, unsigned long>,
                            std::map<std::string, double>>> rows(sessions.begin(),
                                                                 sessions.end());
      auto volume = [](const std::map<std::string, double>& fields) {
        double total = 0.0;
        for (const char* f : {"updates_in", "updates_out", "withdraws_in",
                              "withdraws_out"}) {
          const auto it = fields.find(f);
          if (it != fields.end()) total += it->second;
        }
        return total;
      };
      std::stable_sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
        return volume(a.second) > volume(b.second);
      });
      std::printf("\n  per-peer sessions (%zu):\n", rows.size());
      std::printf("    %-10s %-20s %10s %10s %8s %8s %8s %8s %8s\n", "scope",
                  "session", "in", "out", "wdr-in", "wdr-out", "rejects", "flaps",
                  "adj-out");
      const std::size_t shown = std::min<std::size_t>(rows.size(), 12);
      for (std::size_t i = 0; i < shown; ++i) {
        const auto& [key, fields] = rows[i];
        const auto field = [&](const char* name) {
          const auto it = fields.find(name);
          return it == fields.end() ? 0.0 : it->second;
        };
        char session[32];
        std::snprintf(session, sizeof session, "AS%lu -> AS%lu", std::get<1>(key),
                      std::get<2>(key));
        std::printf("    %-10s %-20s %10.0f %10.0f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                    std::get<0>(key).c_str(), session, field("updates_in"),
                    field("updates_out"), field("withdraws_in"),
                    field("withdraws_out"), field("rejects"), field("flaps"),
                    field("adj_out_depth"));
      }
      if (rows.size() > shown) {
        std::printf("    ... %zu more sessions\n", rows.size() - shown);
      }
    }
  }

  // Time-series rates: when the bench embedded its sampler history
  // ("series", shape from telemetry::TimeSeriesSampler::to_json), show the
  // overall per-second rate of the fastest-moving series across the sampled
  // window — the rough live view `dbgp_server`'s `series` verb gives.
  if (const Value* series_root = root.find("series");
      series_root != nullptr && series_root->is_object()) {
    const Value* table = series_root->find("series");
    if (table != nullptr && table->is_object()) {
      struct SeriesRow {
        std::string name;
        double delta = 0.0;
        double rate = 0.0;
        std::size_t points = 0;
      };
      std::vector<SeriesRow> rows;
      for (const auto& [name, points] : table->as_object()) {
        if (!points.is_array() || points.as_array().size() < 2) continue;
        const auto& first = points.as_array().front();
        const auto& last = points.as_array().back();
        if (!first.is_array() || first.as_array().size() != 2 || !last.is_array() ||
            last.as_array().size() != 2) {
          continue;
        }
        const double dt = last.as_array()[0].as_double() - first.as_array()[0].as_double();
        const double dv = last.as_array()[1].as_double() - first.as_array()[1].as_double();
        if (dt <= 0.0 || dv <= 0.0) continue;
        rows.push_back({name, dv, dv / dt, points.as_array().size()});
      }
      std::sort(rows.begin(), rows.end(),
                [](const SeriesRow& a, const SeriesRow& b) { return a.rate > b.rate; });
      if (!rows.empty()) {
        std::printf("\n  time-series rates (%.0f samples @ %.3fs):\n",
                    series_root->number_or("samples", 0.0),
                    series_root->number_or("interval", 0.0));
        std::printf("    %-44s %8s %14s %14s\n", "series", "points", "delta", "rate");
        const std::size_t shown = std::min<std::size_t>(rows.size(), 8);
        for (std::size_t i = 0; i < shown; ++i) {
          std::printf("    %-44s %8zu %14.0f %14s\n", rows[i].name.c_str(),
                      rows[i].points, rows[i].delta, format_rate(rows[i].rate).c_str());
        }
        if (rows.size() > shown) {
          std::printf("    ... %zu more advancing series\n", rows.size() - shown);
        }
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_report <BENCH_*.json> [more.json ...]\n");
    return 2;
  }
  // Positional-only tool: anything that looks like a flag is a typo, not a
  // file to silently fail on later.
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "bench_report: unknown flag %s\n", argv[i]);
      std::fprintf(stderr, "usage: bench_report <BENCH_*.json> [more.json ...]\n");
      return 2;
    }
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      report(argv[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", argv[i], e.what());
      rc = 2;
    }
  }
  return rc;
}
