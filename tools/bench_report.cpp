// bench_report — pretty-print one or more BENCH_*.json files.
//
//   bench_report <file.json> [more.json ...]
//
// Shows the per-benchmark throughput table, the headline latency
// percentiles, and the busiest telemetry counters from the embedded
// registry snapshot. Exits 2 on unreadable/malformed input.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "util/json.h"

namespace {

using dbgp::util::json::Value;

std::string format_rate(double v) {
  char buf[64];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof buf, "%.2f G/s", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.2f M/s", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f k/s", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f /s", v);
  }
  return buf;
}

void report(const std::string& path) {
  const Value root = dbgp::util::json::parse_file(path);
  std::printf("== %s (bench: %s) ==\n", path.c_str(),
              root.string_or("bench", "?").c_str());

  const Value* benches = root.find("benchmarks");
  if (benches != nullptr && benches->is_array()) {
    std::printf("  %-44s %12s %8s %14s %14s\n", "benchmark", "iterations", "threads",
                "time/op", "throughput");
    for (const auto& b : benches->as_array()) {
      const double per_op = b.number_or("time_per_op_s", 0.0);
      // The sweep benches record their parallel width as a "threads" counter;
      // single-threaded benches have no such counter and print "-".
      const Value* bench_counters = b.find("counters");
      const double threads =
          bench_counters != nullptr ? bench_counters->number_or("threads", 0.0) : 0.0;
      char threads_buf[16];
      if (threads > 0) {
        std::snprintf(threads_buf, sizeof threads_buf, "%.0f", threads);
      } else {
        std::snprintf(threads_buf, sizeof threads_buf, "-");
      }
      std::printf("  %-44s %12.0f %8s %11.3f us %14s\n",
                  b.string_or("name", "?").c_str(), b.number_or("iterations", 0.0),
                  threads_buf, per_op * 1e6,
                  format_rate(b.number_or("ops_per_sec", 0.0)).c_str());
    }
  }

  // Speedup-vs-threads: any family of rows sharing a name modulo the
  // "/threads:N" component and carrying a "threads" counter gets a scaling
  // table, normalized to its threads:1 row (the sharded speaker and sweep
  // benches emit exactly this shape).
  if (benches != nullptr && benches->is_array()) {
    struct Row {
      double threads = 0.0;
      double rate = 0.0;
    };
    std::map<std::string, std::vector<Row>> families;
    for (const auto& b : benches->as_array()) {
      const Value* bench_counters = b.find("counters");
      if (bench_counters == nullptr) continue;
      const double threads = bench_counters->number_or("threads", 0.0);
      if (threads <= 0) continue;
      std::string name = b.string_or("name", "");
      const auto at = name.find("/threads:");
      if (at != std::string::npos) {
        const auto next = name.find('/', at + 1);
        name.erase(at, next == std::string::npos ? std::string::npos : next - at);
      }
      families[name].push_back({threads, b.number_or("ops_per_sec", 0.0)});
    }
    for (auto& [name, rows] : families) {
      if (rows.size() < 2) continue;
      std::sort(rows.begin(), rows.end(),
                [](const Row& a, const Row& b) { return a.threads < b.threads; });
      const double base = rows.front().threads == 1.0 ? rows.front().rate : 0.0;
      if (base <= 0) continue;
      std::printf("\n  speedup vs threads — %s\n", name.c_str());
      std::printf("    %8s %14s %8s\n", "threads", "throughput", "speedup");
      for (const Row& row : rows) {
        std::printf("    %8.0f %14s %7.2fx\n", row.threads,
                    format_rate(row.rate).c_str(), row.rate / base);
      }
    }
  }

  std::printf("\n  peak throughput: %s\n",
              format_rate(root.number_or("ops_per_sec", 0.0)).c_str());
  std::printf("  latency (%s): p50 %.3f us, p95 %.3f us, p99 %.3f us\n",
              root.string_or("latency_source", "?").c_str(),
              root.number_or("p50_us", 0.0), root.number_or("p95_us", 0.0),
              root.number_or("p99_us", 0.0));

  const Value* metrics = root.find("metrics");
  const Value* counters = metrics != nullptr ? metrics->find("counters") : nullptr;
  if (counters != nullptr && counters->is_object() && !counters->as_object().empty()) {
    std::vector<std::pair<std::string, double>> rows;
    for (const auto& [name, value] : counters->as_object()) {
      if (value.is_number() && value.as_double() > 0.0) {
        rows.emplace_back(name, value.as_double());
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    if (!rows.empty()) {
      std::printf("\n  top telemetry counters:\n");
      const std::size_t shown = std::min<std::size_t>(rows.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        std::printf("    %-44s %16.0f\n", rows[i].first.c_str(), rows[i].second);
      }
      if (rows.size() > shown) {
        std::printf("    ... %zu more non-zero counters\n", rows.size() - shown);
      }
    }
  }

  // Interner effectiveness (DESIGN.md §14): hit/miss/live for the BGP
  // attribute interner and the IA descriptor-tail interner, when the bench
  // exercised them.
  const Value* gauges = metrics != nullptr ? metrics->find("gauges") : nullptr;
  auto metric = [&](const char* name) {
    double v = counters != nullptr ? counters->number_or(name, 0.0) : 0.0;
    if (v == 0.0 && gauges != nullptr) v = gauges->number_or(name, 0.0);
    return v;
  };
  bool header_printed = false;
  for (const char* prefix : {"dbgp.rib.interner", "dbgp.ia.interner"}) {
    const double hits = metric((std::string(prefix) + ".hits").c_str());
    const double misses = metric((std::string(prefix) + ".misses").c_str());
    if (hits + misses <= 0.0) continue;
    if (!header_printed) {
      std::printf("\n  interner stats:\n");
      std::printf("    %-24s %14s %14s %10s %10s\n", "interner", "hits", "misses",
                  "hit rate", "live");
      header_printed = true;
    }
    std::printf("    %-24s %14.0f %14.0f %9.2f%% %10.0f\n", prefix, hits, misses,
                100.0 * hits / (hits + misses),
                metric((std::string(prefix) + ".live").c_str()));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_report <BENCH_*.json> [more.json ...]\n");
    return 2;
  }
  // Positional-only tool: anything that looks like a flag is a typo, not a
  // file to silently fail on later.
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "bench_report: unknown flag %s\n", argv[i]);
      std::fprintf(stderr, "usage: bench_report <BENCH_*.json> [more.json ...]\n");
      return 2;
    }
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    try {
      report(argv[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s: %s\n", argv[i], e.what());
      rc = 2;
    }
  }
  return rc;
}
