// dbgp_explain — causal route provenance for scenario files.
//
//   dbgp_explain <scenario-file> --why <as> <prefix> [--at <t>]
//   dbgp_explain <scenario-file> --blame-reconvergence
//   common: [--batched] [--chaos-seed <n>] [--chaos-profile <name>]
//
// Runs the scenario with causal tracing enabled (telemetry/causal.h) and
// answers provenance questions over the recorded trace:
//
//   --why AS PREFIX [--at T]  prints the causal chain behind the route AS
//       holds for PREFIX at sim time T (default: after convergence) — the
//       origination, every wire hop, and each decision along the way with
//       its per-candidate verdicts (why each alternative lost).
//   --blame-reconvergence  lists every reconvergence window with the chaos
//       disruption(s) that opened it and the update storm (frames/decisions)
//       it spawned. Meaningful for scenarios with a `chaos` stanza or with
//       --chaos-profile.
//
// Exits 0 on success, 1 when --why finds no recorded decision (the AS never
// selected a route for the prefix), 2 on usage/scenario errors.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <string>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "simnet/chaos.h"
#include "telemetry/provenance.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: dbgp_explain <scenario-file> --why <as> <prefix> [--at <t>]\n"
               "       dbgp_explain <scenario-file> --blame-reconvergence\n"
               "       common: [--batched] [--chaos-seed <n>] [--chaos-profile <name>]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  // --why takes two bare operands, which util::Flags cannot express; parse
  // argv by hand.
  std::string scenario_path;
  bool why = false, blame = false, batched = false;
  std::uint32_t why_as = 0;
  std::string why_prefix;
  double at = std::numeric_limits<double>::infinity();
  std::string chaos_profile;
  std::int64_t chaos_seed = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--why") {
      if (i + 2 >= argc) return usage();
      why = true;
      why_as = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      why_prefix = argv[++i];
    } else if (arg == "--blame-reconvergence") {
      blame = true;
    } else if (arg == "--at") {
      if (i + 1 >= argc) return usage();
      at = std::strtod(argv[++i], nullptr);
    } else if (arg == "--batched") {
      batched = true;
    } else if (arg == "--chaos-seed") {
      if (i + 1 >= argc) return usage();
      chaos_seed = std::strtoll(argv[++i], nullptr, 10);
    } else if (arg == "--chaos-profile") {
      if (i + 1 >= argc) return usage();
      chaos_profile = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return usage();
    } else if (scenario_path.empty()) {
      scenario_path = arg;
    } else {
      return usage();
    }
  }
  if (scenario_path.empty() || why == blame) return usage();  // exactly one mode

  try {
    const auto scenario = dbgp::scenario::load_scenario(scenario_path);
    dbgp::scenario::Runner runner;
    runner.enable_causal_tracing();
    if (batched) runner.set_delivery(dbgp::simnet::DeliveryMode::kBatched);
    if (!chaos_profile.empty()) {
      runner.set_chaos(dbgp::simnet::chaos_profile(chaos_profile));
    }
    if (chaos_seed >= 0) {
      runner.set_chaos_seed(static_cast<std::uint64_t>(chaos_seed));
    }
    runner.build(scenario);
    const auto result = runner.run();
    if (!result.converged) {
      std::fprintf(stderr,
                   "warning: event cap reached before the control plane drained; "
                   "the trace below describes a truncated run\n");
    }
    if (runner.causal().dropped() > 0) {
      std::fprintf(stderr,
                   "warning: causal trace capped — %zu spans/audits dropped "
                   "(telemetry.causal.dropped); chains may be incomplete\n",
                   runner.causal().dropped());
    }

    const dbgp::telemetry::ProvenanceIndex index(runner.causal());
    if (why) {
      const auto chain = index.why(why_as, why_prefix, at);
      std::printf("%s", dbgp::telemetry::ProvenanceIndex::format_why(chain).c_str());
      return chain.empty() ? 1 : 0;
    }
    const auto windows = index.reconvergence_windows();
    std::printf("%s", dbgp::telemetry::ProvenanceIndex::format_blame(windows).c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
