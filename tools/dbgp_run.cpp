// dbgp_run — run a D-BGP scenario file and report routes and expectations.
//
//   dbgp_run <scenario-file> [--tables] [--quiet]
//            [--metrics <file>] [--trace <file>]
//
// --metrics writes a JSON snapshot of the process-wide telemetry registry
// (speaker counters, codec latency histograms, simnet gauges) after the run;
// --trace additionally records every per-hop IA delivery and writes the
// propagation trace as JSON.
//
// Exits 0 when the network converged and every `expect` in the scenario
// holds, 1 otherwise. See scenarios/*.dbgp for examples and
// src/scenario/parser.h for the format.
#include <cstdio>
#include <exception>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "telemetry/json_export.h"
#include "telemetry/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  dbgp::util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: dbgp_run <scenario-file> [--tables] [--quiet]\n"
                 "                [--metrics <file>] [--trace <file>]\n");
    return 2;
  }
  const bool quiet = flags.get_bool("quiet", false);
  const std::string metrics_path = flags.get_string("metrics", "");
  const std::string trace_path = flags.get_string("trace", "");

  try {
    const auto scenario = dbgp::scenario::load_scenario(flags.positional()[0]);
    dbgp::scenario::Runner runner;
    if (!trace_path.empty()) runner.enable_tracing();
    runner.build(scenario);
    const auto result = runner.run();

    if (!quiet) {
      std::printf("%s after %zu events; %zu ASes, %zu originations\n",
                  result.converged ? "converged" : "NOT CONVERGED (event cap hit)",
                  result.events, scenario.ases.size(), scenario.originations.size());
      if (flags.get_bool("tables", false)) {
        std::printf("\n%s", runner.dump_tables().c_str());
      }
    }
    for (const auto& er : result.expectations) {
      if (er.passed && quiet) continue;
      std::printf("%s  expect (line %d) AS%u %s%s\n", er.passed ? "PASS" : "FAIL",
                  er.expectation.line, er.expectation.asn,
                  er.expectation.prefix.to_string().c_str(),
                  er.passed ? "" : (" — " + er.detail).c_str());
    }
    if (!result.expectations.empty()) {
      std::printf("%zu/%zu expectations passed\n",
                  result.expectations.size() - result.failures(),
                  result.expectations.size());
    }
    if (!result.converged) {
      std::fprintf(stderr,
                   "warning: event cap reached before the control plane drained; "
                   "results above describe a truncated run\n");
    }

    if (!metrics_path.empty()) {
      dbgp::telemetry::write_metrics_json(
          metrics_path, dbgp::telemetry::MetricsRegistry::global().snapshot());
      if (!quiet) std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      dbgp::telemetry::write_trace_json(trace_path, runner.tracer());
      if (!quiet) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    runner.tracer().size());
      }
    }
    return result.all_passed() && result.converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
