// dbgp_run — run a D-BGP scenario file and report routes and expectations.
//
//   dbgp_run <scenario-file> [--tables] [--quiet]
//
// Exits 0 when every `expect` in the scenario holds, 1 otherwise. See
// scenarios/*.dbgp for examples and src/scenario/parser.h for the format.
#include <cstdio>
#include <exception>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  dbgp::util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error) || flags.positional().size() != 1) {
    std::fprintf(stderr, "usage: dbgp_run <scenario-file> [--tables] [--quiet]\n");
    return 2;
  }
  const bool quiet = flags.get_bool("quiet", false);

  try {
    const auto scenario = dbgp::scenario::load_scenario(flags.positional()[0]);
    dbgp::scenario::Runner runner;
    runner.build(scenario);
    const auto result = runner.run();

    if (!quiet) {
      std::printf("converged after %zu events; %zu ASes, %zu originations\n",
                  result.events, scenario.ases.size(), scenario.originations.size());
      if (flags.get_bool("tables", false)) {
        std::printf("\n%s", runner.dump_tables().c_str());
      }
    }
    for (const auto& er : result.expectations) {
      if (er.passed && quiet) continue;
      std::printf("%s  expect (line %d) AS%u %s%s\n", er.passed ? "PASS" : "FAIL",
                  er.expectation.line, er.expectation.asn,
                  er.expectation.prefix.to_string().c_str(),
                  er.passed ? "" : (" — " + er.detail).c_str());
    }
    if (!result.expectations.empty()) {
      std::printf("%zu/%zu expectations passed\n",
                  result.expectations.size() - result.failures(),
                  result.expectations.size());
    }
    return result.all_passed() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
