// dbgp_run — run a D-BGP scenario file and report routes and expectations.
//
//   dbgp_run <scenario-file> [--tables] [--quiet] [--batched]
//            [--metrics <file>] [--trace <file>]
//            [--chaos-seed <n>] [--chaos-profile <name>]
//
// --metrics writes a JSON snapshot of the process-wide telemetry registry
// (speaker counters, codec latency histograms, simnet gauges) after the run;
// --trace additionally records every per-hop IA delivery and writes the
// propagation trace as JSON.
//
// --batched switches frame processing to coalesced per-prefix decisions.
// --chaos-seed re-seeds the scenario's `chaos` stanza (a cheap way to sweep
// fault schedules); --chaos-profile injects a named preset schedule
// (flaky|lossy|corrupt|outage|full) even into scenarios without a stanza.
//
// Exits 0 when the network converged and every `expect` in the scenario
// holds, 1 otherwise. See scenarios/*.dbgp for examples and
// src/scenario/parser.h for the format.
#include <cstdio>
#include <exception>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "simnet/chaos.h"
#include "telemetry/json_export.h"
#include "telemetry/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  dbgp::util::Flags flags;
  std::string error;
  if (!flags.parse(argc, argv, error) || flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: dbgp_run <scenario-file> [--tables] [--quiet] [--batched]\n"
                 "                [--metrics <file>] [--trace <file>]\n"
                 "                [--chaos-seed <n>] [--chaos-profile <name>]\n");
    return 2;
  }
  const bool quiet = flags.get_bool("quiet", false);
  const std::string metrics_path = flags.get_string("metrics", "");
  const std::string trace_path = flags.get_string("trace", "");
  const std::string chaos_profile = flags.get_string("chaos-profile", "");
  const std::int64_t chaos_seed = flags.get_int("chaos-seed", -1);

  try {
    const auto scenario = dbgp::scenario::load_scenario(flags.positional()[0]);
    dbgp::scenario::Runner runner;
    if (!trace_path.empty()) runner.enable_tracing();
    if (flags.get_bool("batched", false)) {
      runner.set_delivery(dbgp::simnet::DeliveryMode::kBatched);
    }
    if (!chaos_profile.empty()) {
      runner.set_chaos(dbgp::simnet::chaos_profile(chaos_profile));
    }
    if (chaos_seed >= 0) {
      runner.set_chaos_seed(static_cast<std::uint64_t>(chaos_seed));
    }
    runner.build(scenario);
    const auto result = runner.run();

    if (!quiet) {
      std::printf("%s after %zu events; %zu ASes, %zu originations\n",
                  result.converged ? "converged" : "NOT CONVERGED (event cap hit)",
                  result.events, scenario.ases.size(), scenario.originations.size());
      const auto& s = result.stats;
      if (s.link_flaps + s.crashes + s.frames_lost + s.frames_duplicated +
              s.frames_reordered + s.frames_corrupted + s.frames_rejected >
          0) {
        std::printf(
            "churn: %llu flaps, %llu crashes/%llu restarts; frames: %llu lost, "
            "%llu duplicated, %llu reordered, %llu corrupted, %llu rejected\n",
            static_cast<unsigned long long>(s.link_flaps),
            static_cast<unsigned long long>(s.crashes),
            static_cast<unsigned long long>(s.restarts),
            static_cast<unsigned long long>(s.frames_lost),
            static_cast<unsigned long long>(s.frames_duplicated),
            static_cast<unsigned long long>(s.frames_reordered),
            static_cast<unsigned long long>(s.frames_corrupted),
            static_cast<unsigned long long>(s.frames_rejected));
      }
      if (flags.get_bool("tables", false)) {
        std::printf("\n%s", runner.dump_tables().c_str());
      }
    }
    for (const auto& er : result.expectations) {
      if (er.passed && quiet) continue;
      std::printf("%s  expect (line %d) AS%u %s%s\n", er.passed ? "PASS" : "FAIL",
                  er.expectation.line, er.expectation.asn,
                  er.expectation.prefix.to_string().c_str(),
                  er.passed ? "" : (" — " + er.detail).c_str());
    }
    if (!result.expectations.empty()) {
      std::printf("%zu/%zu expectations passed\n",
                  result.expectations.size() - result.failures(),
                  result.expectations.size());
    }
    if (!result.converged) {
      std::fprintf(stderr,
                   "warning: event cap reached before the control plane drained; "
                   "results above describe a truncated run\n");
    }

    if (!metrics_path.empty()) {
      dbgp::telemetry::write_metrics_json(
          metrics_path, dbgp::telemetry::MetricsRegistry::global().snapshot());
      if (!quiet) std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty()) {
      dbgp::telemetry::write_trace_json(trace_path, runner.tracer());
      if (!quiet) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    runner.tracer().size());
      }
    }
    return result.all_passed() && result.converged ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
