// dbgp_run — run a D-BGP scenario file and report routes and expectations.
//
//   dbgp_run <scenario-file> [--tables] [--quiet] [--batched]
//            [--metrics <file>] [--trace <file>] [--trace-format json|perfetto]
//            [--explain <as>:<prefix>]
//            [--chaos-seed <n>] [--chaos-profile <name>]
//            [--threads <n>] [--speaker-threads <n>] [--max-events <n>]
//
// A scenario with a `sweep` stanza is an experiment description rather than
// a network: dbgp_run executes the Figure 9/10 incremental-benefit sweep on
// the deterministic parallel sweep engine and prints the benefit table.
// --threads overrides the stanza's thread count (0 = all hardware threads,
// 1 = sequential; results are bit-identical either way).
//
// --metrics writes a JSON snapshot of the process-wide telemetry registry
// (speaker counters, codec latency histograms, simnet gauges) after the run;
// --trace additionally records what happened during the run and writes it to
// the given file. The default --trace-format=json is the flat per-hop IA
// propagation trace; --trace-format=perfetto records the causal span/audit
// trace instead and writes Chrome trace-event JSON for chrome://tracing or
// ui.perfetto.dev.
//
// --explain AS:PREFIX prints the causal chain (origination, wire hops,
// per-hop decision verdicts) behind the route that AS holds for PREFIX after
// convergence — the same output as `dbgp_explain --why`.
//
// --batched switches frame processing to coalesced per-prefix decisions.
// --speaker-threads runs each speaker's decode/decision stages on a shared
// worker pool (requires --batched to have any effect; overrides the
// scenario's `speaker-threads` directive). Routes, traces, and expectation
// results are bit-identical at any value — it is purely a throughput knob.
// --chaos-seed re-seeds the scenario's `chaos` stanza (a cheap way to sweep
// fault schedules); --chaos-profile injects a named preset schedule
// (flaky|lossy|corrupt|outage|full) even into scenarios without a stanza.
//
// --observe-interval <s> turns on the observability plane (overriding any
// `observe` stanza); --event-log writes the session/chaos/reconvergence
// journal as JSONL, --series the sampled metric time series as JSON (either
// flag alone implies observation at the default 0.5 s cadence). --oracle
// classifies every (AS, prefix) pair's convergence from the causal trace
// (enabling causal tracing) and writes the report JSON; the one-line verdict
// is always printed.
//
// --max-events <n> bounds the event drain. Scenarios with no stable state
// (dispute-wheel at fc-adoption=0) never drain on their own; with an
// explicit cap the truncation is the point of the run — pair it with
// --oracle to classify the oscillation — and a capped drain does not force
// a non-zero exit.
//
// Exits 0 when the network converged and every `expect` in the scenario
// holds, 1 otherwise. See scenarios/*.dbgp for examples and
// src/scenario/parser.h for the format.
#include <cstdio>
#include <exception>
#include <stdexcept>
#include <string>

#include "scenario/parser.h"
#include "scenario/runner.h"
#include "simnet/chaos.h"
#include "telemetry/json_export.h"
#include "telemetry/metrics.h"
#include "telemetry/oracle.h"
#include "telemetry/perfetto_export.h"
#include "telemetry/provenance.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

// Prints the Figure 9/10-style benefit table for a sweep scenario.
void print_sweep(const dbgp::scenario::SweepDecl& decl,
                 const dbgp::sim::SweepResult& result, bool quiet) {
  if (!quiet) {
    std::printf("sweep: %s archetype, %zu-AS Waxman, %zu trials\n\n",
                decl.archetype == dbgp::scenario::SweepDecl::Archetype::kExtraPaths
                    ? "extra-paths"
                    : "bottleneck",
                decl.nodes, decl.trials);
  }
  std::printf("%10s | %22s | %22s\n", "adoption", "D-BGP baseline (±CI95)",
              "BGP baseline (±CI95)");
  for (std::size_t i = 0; i < result.dbgp_baseline.size(); ++i) {
    std::printf("%9.0f%% | %12.1f ± %7.1f | %12.1f ± %7.1f\n",
                result.dbgp_baseline[i].adoption * 100,
                result.dbgp_baseline[i].benefit.mean,
                result.dbgp_baseline[i].benefit.ci95,
                result.bgp_baseline[i].benefit.mean,
                result.bgp_baseline[i].benefit.ci95);
  }
  std::printf("status quo (0%% adoption): %.1f\nbest case (100%%, full information): %.1f\n",
              result.status_quo, result.best_case);
}

// Parses "--explain 500:203.0.113.0/24" into (as, prefix).
void parse_explain(const std::string& arg, std::uint32_t& as, std::string& prefix) {
  const auto colon = arg.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
    throw std::runtime_error("--explain expects <as>:<prefix>, got '" + arg + "'");
  }
  as = static_cast<std::uint32_t>(std::stoul(arg.substr(0, colon)));
  prefix = arg.substr(colon + 1);
}

}  // namespace

int main(int argc, char** argv) {
  dbgp::util::Flags flags;
  flags.allow({"tables", "quiet", "batched", "metrics", "trace", "trace-format",
               "explain", "chaos-seed", "chaos-profile", "threads",
               "speaker-threads", "observe-interval", "event-log", "series",
               "oracle", "max-events"});
  std::string error;
  if (!flags.parse(argc, argv, error) || flags.positional().size() != 1) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    std::fprintf(stderr,
                 "usage: dbgp_run <scenario-file> [--tables] [--quiet] [--batched]\n"
                 "                [--metrics <file>] [--trace <file>]\n"
                 "                [--trace-format json|perfetto]\n"
                 "                [--explain <as>:<prefix>]\n"
                 "                [--chaos-seed <n>] [--chaos-profile <name>]\n"
                 "                [--threads <n>] [--speaker-threads <n>]\n"
                 "                [--observe-interval <s>] [--event-log <file>]\n"
                 "                [--series <file>] [--oracle <file>]\n"
                 "                [--max-events <n>]\n");
    return 2;
  }
  const bool quiet = flags.get_bool("quiet", false);
  const std::string metrics_path = flags.get_string("metrics", "");
  const std::string trace_path = flags.get_string("trace", "");
  const std::string trace_format = flags.get_string("trace-format", "json");
  const std::string explain_arg = flags.get_string("explain", "");
  const std::string chaos_profile = flags.get_string("chaos-profile", "");
  const std::int64_t chaos_seed = flags.get_int("chaos-seed", -1);
  const std::string event_log_path = flags.get_string("event-log", "");
  const std::string series_path = flags.get_string("series", "");
  const std::string oracle_path = flags.get_string("oracle", "");
  const bool want_oracle = flags.has("oracle");
  if (trace_format != "json" && trace_format != "perfetto") {
    std::fprintf(stderr, "error: --trace-format must be json or perfetto\n");
    return 2;
  }

  try {
    std::uint32_t explain_as = 0;
    std::string explain_prefix;
    if (!explain_arg.empty()) parse_explain(explain_arg, explain_as, explain_prefix);

    const auto scenario = dbgp::scenario::load_scenario(flags.positional()[0]);
    if (!scenario.server_commands.empty()) {
      std::fprintf(stderr,
                   "warning: ignoring %zu `server` timeline command(s) — "
                   "dbgp_run is one-shot; use dbgp_server to execute them\n",
                   scenario.server_commands.size());
    }

    if (scenario.sweep) {
      std::optional<std::size_t> threads_override;
      if (flags.has("threads")) {
        threads_override = static_cast<std::size_t>(flags.get_int("threads", 1));
      }
      const auto result = dbgp::scenario::run_scenario_sweep(scenario, threads_override);
      print_sweep(*scenario.sweep, result, quiet);
      if (!metrics_path.empty()) {
        dbgp::telemetry::write_metrics_json(
            metrics_path, dbgp::telemetry::MetricsRegistry::global().snapshot());
        if (!quiet) std::printf("metrics written to %s\n", metrics_path.c_str());
      }
      return 0;
    }

    dbgp::scenario::Runner runner;
    if (!trace_path.empty() && trace_format == "json") runner.enable_tracing();
    if ((!trace_path.empty() && trace_format == "perfetto") || !explain_arg.empty() ||
        want_oracle) {
      runner.enable_causal_tracing();
    }
    if (flags.has("observe-interval")) {
      const std::string interval = flags.get_string("observe-interval", "0.5");
      runner.set_observe(std::stod(interval));
    } else if ((!event_log_path.empty() || !series_path.empty()) &&
               scenario.observe_interval <= 0.0) {
      // The export flags imply observation; without a stanza or an explicit
      // interval, sample at the sampler's default cadence.
      runner.set_observe(0.5);
    }
    if (flags.get_bool("batched", false)) {
      runner.set_delivery(dbgp::simnet::DeliveryMode::kBatched);
    }
    if (flags.has("speaker-threads")) {
      const std::int64_t n = flags.get_int("speaker-threads", 1);
      if (n < 1) {
        std::fprintf(stderr, "error: --speaker-threads must be >= 1\n");
        return 2;
      }
      runner.set_speaker_threads(static_cast<std::size_t>(n));
    }
    if (!chaos_profile.empty()) {
      runner.set_chaos(dbgp::simnet::chaos_profile(chaos_profile));
    }
    if (chaos_seed >= 0) {
      runner.set_chaos_seed(static_cast<std::uint64_t>(chaos_seed));
    }
    // --max-events bounds the drain. Dispute-wheel scenarios at
    // fc-adoption=0 have no stable state, so an unbounded drain would only
    // stop at the 10M safety valve; an explicit cap makes the truncation the
    // point of the run (the oracle classifies the trajectory), so a capped
    // result is not an error exit below.
    const bool explicit_cap = flags.has("max-events");
    if (explicit_cap) {
      const std::int64_t n = flags.get_int("max-events", 0);
      if (n < 1) {
        std::fprintf(stderr, "error: --max-events must be >= 1\n");
        return 2;
      }
      runner.set_max_events(static_cast<std::size_t>(n));
    }
    runner.build(scenario);
    const auto result = runner.run();

    if (!quiet) {
      std::printf("%s after %zu events; %zu ASes, %zu originations\n",
                  result.converged ? "converged" : "NOT CONVERGED (event cap hit)",
                  result.events, runner.scenario().ases.size(),
                  runner.scenario().originations.size());
      const auto& s = result.stats;
      if (s.link_flaps + s.crashes + s.frames_lost + s.frames_duplicated +
              s.frames_reordered + s.frames_corrupted + s.frames_rejected >
          0) {
        std::printf(
            "churn: %llu flaps, %llu crashes/%llu restarts; frames: %llu lost, "
            "%llu duplicated, %llu reordered, %llu corrupted, %llu rejected\n",
            static_cast<unsigned long long>(s.link_flaps),
            static_cast<unsigned long long>(s.crashes),
            static_cast<unsigned long long>(s.restarts),
            static_cast<unsigned long long>(s.frames_lost),
            static_cast<unsigned long long>(s.frames_duplicated),
            static_cast<unsigned long long>(s.frames_reordered),
            static_cast<unsigned long long>(s.frames_corrupted),
            static_cast<unsigned long long>(s.frames_rejected));
      }
      if (flags.get_bool("tables", false)) {
        std::printf("\n%s", runner.dump_tables().c_str());
      }
    }
    for (const auto& er : result.expectations) {
      if (er.passed && quiet) continue;
      std::printf("%s  expect (line %d) AS%u %s%s\n", er.passed ? "PASS" : "FAIL",
                  er.expectation.line, er.expectation.asn,
                  er.expectation.prefix.to_string().c_str(),
                  er.passed ? "" : (" — " + er.detail).c_str());
    }
    if (!result.expectations.empty()) {
      std::printf("%zu/%zu expectations passed\n",
                  result.expectations.size() - result.failures(),
                  result.expectations.size());
    }
    if (!result.converged) {
      std::fprintf(stderr,
                   "warning: event cap reached before the control plane drained; "
                   "results above describe a truncated run\n");
    }

    if (!metrics_path.empty()) {
      dbgp::telemetry::write_metrics_json(
          metrics_path, dbgp::telemetry::MetricsRegistry::global().snapshot());
      if (!quiet) std::printf("metrics written to %s\n", metrics_path.c_str());
    }
    if (!trace_path.empty() && trace_format == "json") {
      dbgp::telemetry::write_trace_json(trace_path, runner.tracer());
      if (!quiet) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    runner.tracer().size());
      }
      if (runner.tracer().dropped() > 0) {
        std::fprintf(stderr,
                     "warning: propagation trace capped — %zu events dropped "
                     "(telemetry.trace.dropped); the JSON is a prefix of the run\n",
                     runner.tracer().dropped());
      }
    }
    if (!trace_path.empty() && trace_format == "perfetto") {
      if (!dbgp::telemetry::write_perfetto_json(runner.causal(), trace_path)) {
        std::fprintf(stderr, "error: cannot write %s\n", trace_path.c_str());
        return 2;
      }
      if (!quiet) {
        std::printf("perfetto trace written to %s (%zu spans, %zu audits)\n",
                    trace_path.c_str(), runner.causal().span_count(),
                    runner.causal().audit_count());
      }
    }
    if (want_oracle) {
      const dbgp::telemetry::ConvergenceOracle oracle;
      const auto report = oracle.classify(runner.causal());
      if (!oracle_path.empty()) {
        dbgp::util::json::write_file(oracle_path, dbgp::telemetry::to_json(report));
      }
      std::printf(
          "oracle: verdict=%s converged=%zu diverged=%zu oscillating=%zu\n",
          dbgp::telemetry::to_string(report.verdict), report.converged,
          report.diverged, report.oscillating);
      // Journal the verdict (before the JSONL below is written) so the event
      // log is a self-contained record of the run.
      if (runner.event_log() != nullptr) {
        std::string detail = std::string("verdict=") +
                             dbgp::telemetry::to_string(report.verdict);
        detail += " converged=" + std::to_string(report.converged);
        detail += " diverged=" + std::to_string(report.diverged);
        detail += " oscillating=" + std::to_string(report.oscillating);
        runner.event_log()->record(runner.network().events().now(), "oracle", 0, 0,
                                   std::move(detail));
      }
    }
    if (!event_log_path.empty()) {
      if (runner.event_log() == nullptr) {
        std::fprintf(stderr, "error: --event-log needs observation on\n");
        return 2;
      }
      runner.event_log()->write_jsonl(event_log_path);
      if (!quiet) {
        std::printf("event log written to %s (%zu events)\n", event_log_path.c_str(),
                    runner.event_log()->size());
      }
    }
    if (!series_path.empty()) {
      if (runner.sampler() == nullptr) {
        std::fprintf(stderr, "error: --series needs observation on\n");
        return 2;
      }
      dbgp::util::json::write_file(series_path, runner.sampler()->to_json());
      if (!quiet) {
        std::printf("time series written to %s (%zu samples)\n", series_path.c_str(),
                    runner.sampler()->sample_count());
      }
    }
    if (!explain_arg.empty()) {
      const dbgp::telemetry::ProvenanceIndex index(runner.causal());
      const auto chain = index.why(explain_as, explain_prefix);
      std::printf("%s", dbgp::telemetry::ProvenanceIndex::format_why(chain).c_str());
    }
    if (runner.causal().dropped() > 0) {
      std::fprintf(stderr,
                   "warning: causal trace capped — %zu spans/audits dropped "
                   "(telemetry.causal.dropped); chains may be incomplete\n",
                   runner.causal().dropped());
    }
    return result.all_passed() && (result.converged || explicit_cap) ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
