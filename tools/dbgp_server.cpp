// dbgp_server — host a D-BGP network as a long-lived route-server daemon.
//
//   dbgp_server [<scenario-file>] [--restore <snapshot>] [--script <file>]
//               [--socket <path>] [--serve] [--batched] [--quiet]
//               [--no-causal] [--speaker-threads <n>]
//
// The daemon owns one simnet::DbgpNetwork for the lifetime of the process
// and exposes the server/control.h command grammar (`help` lists it) for
// live reconfiguration — add/remove peerings, hot policy reload, rolling
// protocol upgrades, chaos injection, crash/graceful-restart, RIB
// snapshot/restore — plus query verbs (rib/why/blame/metrics/health) over
// the causal trace and the telemetry registry.
//
// Command sources, in order:
//   1. The scenario's `server <time> <command>` timeline: the network runs
//      to each command's simulated time, then executes it — a scripted,
//      fully deterministic serving session.
//   2. --script <file>: command lines executed after the timeline.
//   3. Interactive: stdin (line per command), plus any number of clients on
//      the --socket Unix socket.
//
// With a timeline or --script the process exits after executing them
// (exit 1 if any command failed) unless --serve asks it to keep serving.
// Plain `dbgp_server <scenario>` (or `--restore`) always serves.
//
// Socket framing: each command line yields a status line `ok` or
// `err <message>`, then the payload lines, then a lone `.` terminator —
// stdin sessions get the human-friendly payload only. `quit` ends a socket
// client's session; on stdin it (or EOF) stops the daemon.
//
// --restore boots the daemon from a RIB snapshot taken by the `snapshot`
// command: the restored Loc-RIB is bit-identical to the serving state the
// snapshot captured. --no-causal disables causal tracing (smaller memory
// footprint, but why/blame and the divergence watchdog go dark).
//
// --speaker-threads runs each speaker's decode/decision stages on a shared
// worker pool (effective with --batched --no-causal; causal tracing pins
// speakers to the sequential path). Serving state stays bit-identical at any
// value, and `set speaker-threads <n>` changes it live between drains.
//
// --observe-interval turns on the observability plane (time-series sampling +
// event journal; also available live via the `observe` verb, and implied by a
// scenario's `observe` stanza or by --event-log). While serving, the poll
// loop wakes on a wall-clock cadence to keep the series fresh; `series`,
// `events`, `peers`, and `metrics-prom` expose the data. --event-log writes
// the journal as JSONL on exit.
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "server/control.h"
#include "server/daemon.h"
#include "server/snapshot.h"
#include "scenario/parser.h"
#include "util/flags.h"

namespace {

using dbgp::server::CommandResult;
using dbgp::server::ControlApi;

struct SessionState {
  ControlApi* api = nullptr;
  bool quiet = false;
  bool any_error = false;
};

// stdin / script / timeline presentation: payload (unless quiet), errors to
// stderr; the process keeps going — a daemon does not die on a bad command.
bool run_line(SessionState& session, const std::string& line) {
  const CommandResult result = session.api->execute(line);
  if (!result.ok) {
    session.any_error = true;
    std::fprintf(stderr, "error: %s\n", result.text.c_str());
  } else if (!result.text.empty() && !session.quiet) {
    std::printf("%s\n", result.text.c_str());
    std::fflush(stdout);
  }
  return result.quit;
}

int make_listen_socket(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
    ::close(fd);
    return -1;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 8) < 0) {
    std::perror("bind/listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n <= 0) return;  // client went away; the poll loop will reap it
    off += static_cast<std::size_t>(n);
  }
}

struct Client {
  int fd = -1;
  std::string buffer;
};

// Serves stdin and (optionally) a Unix socket until stdin EOF/quit.
int serve(dbgp::server::RouteServer& server, ControlApi& api,
          const std::string& socket_path, bool quiet) {
  SessionState stdin_session{&api, quiet, false};
  const int listen_fd = socket_path.empty() ? -1 : make_listen_socket(socket_path);
  if (!socket_path.empty() && listen_fd < 0) return 2;
  if (listen_fd >= 0 && !quiet) {
    std::printf("listening on %s\n", socket_path.c_str());
    std::fflush(stdout);
  }

  std::vector<Client> clients;
  std::string stdin_buffer;
  bool stdin_open = true;
  bool running = true;
  while (running && (stdin_open || listen_fd >= 0)) {
    std::vector<pollfd> fds;
    if (stdin_open) fds.push_back({STDIN_FILENO, POLLIN, 0});
    if (listen_fd >= 0) fds.push_back({listen_fd, POLLIN, 0});
    for (const auto& client : clients) fds.push_back({client.fd, POLLIN, 0});
    // With observation on, wake periodically so the time-series keeps
    // advancing while the console sits idle (wall-time cadence, sim-time
    // stamps — the sampler dedups when sim time has not moved). The `observe`
    // verb can toggle this live, so the timeout is recomputed per iteration.
    const int timeout_ms = server.sampler() != nullptr ? 250 : -1;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) break;
    if (server.sampler() != nullptr) server.sampler()->sample(server.now());
    if (ready == 0) continue;

    std::size_t index = 0;
    if (stdin_open) {
      if (fds[index].revents != 0) {
        char chunk[4096];
        const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof(chunk));
        if (n <= 0) {
          stdin_open = false;
          running = false;  // stdin EOF stops the daemon
        } else {
          stdin_buffer.append(chunk, static_cast<std::size_t>(n));
          std::size_t nl;
          while ((nl = stdin_buffer.find('\n')) != std::string::npos) {
            const std::string line = stdin_buffer.substr(0, nl);
            stdin_buffer.erase(0, nl + 1);
            if (run_line(stdin_session, line)) {
              running = false;
              break;
            }
          }
        }
      }
      ++index;
    }
    if (listen_fd >= 0) {
      if (fds[index].revents != 0) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd >= 0) clients.push_back({fd, {}});
      }
      ++index;
    }
    for (std::size_t c = 0; c < clients.size() && index + c < fds.size(); ++c) {
      if (fds[index + c].revents == 0) continue;
      Client& client = clients[c];
      char chunk[4096];
      const ssize_t n = ::read(client.fd, chunk, sizeof(chunk));
      if (n <= 0) {
        ::close(client.fd);
        client.fd = -1;
        continue;
      }
      client.buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while (client.fd >= 0 && (nl = client.buffer.find('\n')) != std::string::npos) {
        const std::string line = client.buffer.substr(0, nl);
        client.buffer.erase(0, nl + 1);
        const CommandResult result = api.execute(line);
        std::string out = result.ok ? "ok\n" : "err " + result.text + "\n";
        if (result.ok && !result.text.empty()) out += result.text + "\n";
        out += ".\n";
        write_all(client.fd, out);
        if (result.quit) {
          ::close(client.fd);
          client.fd = -1;
        }
      }
    }
    std::erase_if(clients, [](const Client& c) { return c.fd < 0; });
  }

  for (const auto& client : clients) ::close(client.fd);
  if (listen_fd >= 0) {
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
  }
  return stdin_session.any_error ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  dbgp::util::Flags flags;
  flags.allow({"restore", "script", "socket", "serve", "batched", "quiet", "no-causal",
               "speaker-threads", "observe-interval", "event-log"});
  std::string error;
  if (!flags.parse(argc, argv, error) || flags.positional().size() > 1 ||
      (flags.positional().empty() && !flags.has("restore"))) {
    if (!error.empty()) std::fprintf(stderr, "error: %s\n", error.c_str());
    std::fprintf(stderr,
                 "usage: dbgp_server [<scenario-file>] [--restore <snapshot>]\n"
                 "                   [--script <file>] [--socket <path>] [--serve]\n"
                 "                   [--batched] [--quiet] [--no-causal]\n"
                 "                   [--speaker-threads <n>]\n"
                 "                   [--observe-interval <s>] [--event-log <file>]\n");
    return 2;
  }

  try {
    dbgp::server::RouteServer::Options options;
    if (flags.get_bool("batched", false)) {
      options.delivery = dbgp::simnet::DeliveryMode::kBatched;
    }
    options.causal = !flags.get_bool("no-causal", false);
    if (flags.has("speaker-threads")) {
      const std::int64_t n = flags.get_int("speaker-threads", 1);
      if (n < 1) {
        std::fprintf(stderr, "error: --speaker-threads must be >= 1\n");
        return 2;
      }
      options.speaker_threads = static_cast<std::size_t>(n);
    }
    const std::string event_log_path = flags.get_string("event-log", "");
    if (flags.has("observe-interval")) {
      options.observe_interval = std::stod(flags.get_string("observe-interval", "0.5"));
      if (options.observe_interval <= 0.0) {
        std::fprintf(stderr, "error: --observe-interval must be > 0\n");
        return 2;
      }
    } else if (!event_log_path.empty()) {
      // --event-log implies observation; the scenario's `observe` stanza (if
      // any) re-shapes the interval at load() time.
      options.observe_interval = 0.5;
    }
    dbgp::server::RouteServer server(options);
    dbgp::server::ControlApi api(server);
    const bool quiet = flags.get_bool("quiet", false);
    SessionState session{&api, quiet, false};

    const std::string restore_path = flags.get_string("restore", "");
    std::vector<dbgp::scenario::ServerCmdDecl> timeline;
    if (!restore_path.empty()) {
      server.restore(dbgp::server::load_snapshot(restore_path));
      if (!quiet) {
        std::printf("restored %zu ASes from %s (t=%.3f)\n", server.as_numbers().size(),
                    restore_path.c_str(), server.now());
      }
    }
    if (!flags.positional().empty()) {
      if (!restore_path.empty()) {
        std::fprintf(stderr, "error: give a scenario or --restore, not both\n");
        return 2;
      }
      const auto scenario = dbgp::scenario::load_scenario(flags.positional()[0]);
      server.load(scenario);
      timeline = scenario.server_commands;
    }

    // 1. The scenario's deterministic command timeline.
    for (const auto& cmd : timeline) {
      server.run_until(cmd.at);
      if (!quiet) std::printf("t=%.3f> %s\n", cmd.at, cmd.command.c_str());
      run_line(session, cmd.command);
    }
    if (!timeline.empty()) server.run();

    // 2. A command script.
    const std::string script_path = flags.get_string("script", "");
    if (!script_path.empty()) {
      std::ifstream script(script_path);
      if (!script) {
        std::fprintf(stderr, "error: cannot open script %s\n", script_path.c_str());
        return 2;
      }
      std::string line;
      while (std::getline(script, line)) {
        if (run_line(session, line)) break;
      }
    }

    // On any exit path below, persist the event journal when asked.
    const auto write_event_log = [&]() -> bool {
      if (event_log_path.empty()) return true;
      if (server.event_log() == nullptr) {
        std::fprintf(stderr, "error: --event-log needs observation on\n");
        return false;
      }
      server.event_log()->write_jsonl(event_log_path);
      if (!quiet) {
        std::printf("event log written to %s (%zu events)\n", event_log_path.c_str(),
                    server.event_log()->size());
      }
      return true;
    };

    // 3. Keep serving unless this was a batch run.
    const bool batch = !timeline.empty() || !script_path.empty();
    if (batch && !flags.get_bool("serve", false)) {
      if (!write_event_log()) return 2;
      return session.any_error ? 1 : 0;
    }
    const int rc = serve(server, api, flags.get_string("socket", ""), quiet);
    if (!write_event_log()) return 2;
    return session.any_error ? 1 : rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
