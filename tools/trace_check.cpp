// trace_check — structural validator for exported Chrome trace-event JSON,
// structured event-log JSONL, and scenario files.
//
//   trace_check <trace.json|events.jsonl|scenario.dbgp> [more ...]
//
// Files ending in `.dbgp` are linted as scenario files: they must parse
// (which already enforces grammar, stanza exclusivity, and the dispute-wheel
// stanza's odd-ring/adoption-range rules), and a `dispute-wheel` stanza is
// additionally cross-checked against the rest of the file — the hub AS must
// not collide with the generated spoke range, and every `expect` must name
// an AS the wheel actually generates and the prefix it originates (the
// classic way a wheel scenario rots is an expectation against an AS number
// from an earlier spoke count).
//
// Files ending in `.jsonl` are validated as telemetry::EventLog exports:
// every non-empty line must be a self-contained JSON object carrying a
// non-negative numeric `time`, a known `kind` (session_up, session_down,
// chaos, reconvergence, oracle), numeric `as`/`peer_as`/`span`, and a string
// `detail`. Line order is write order, not time order (a reconvergence
// window is stamped at its end, which precedes the drain that closed it),
// so no monotonicity is demanded. Everything else is checked as a Chrome
// trace:
//
// The Perfetto exporter (telemetry/perfetto_export.h) is only useful if its
// output actually loads in chrome://tracing / ui.perfetto.dev, so this tool
// checks the invariants those viewers rely on:
//
//   * top level is an object with a `traceEvents` array;
//   * every event has `ph`, `pid`, `tid`, and (except metadata) `ts`;
//   * B/E/X/i events have a `name`; X events have a non-negative `dur`;
//   * timed events are sorted by `ts` (the exporter's contract);
//   * B/E pairs match per (pid, tid): every E closes an open B, none left
//     open at the end;
//   * flow events (`s`/`f`) have an `id`, and every `f` refers to an `id`
//     some `s` opened.
//
// Exits 0 when every file passes, 1 on the first violation (with the file,
// event index, and reason), 2 on IO/parse errors. The dbgp_trace_check
// CMake target runs a scenario with --trace-format=perfetto and pipes the
// result through this.
#include <cstdio>
#include <exception>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "scenario/parser.h"
#include "util/json.h"

namespace {

using dbgp::util::json::Value;

bool fail(const std::string& file, std::size_t index, const std::string& reason) {
  std::fprintf(stderr, "%s: event %zu: %s\n", file.c_str(), index, reason.c_str());
  return false;
}

bool check_jsonl(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  static const std::set<std::string> kKinds = {"session_up", "session_down", "chaos",
                                              "reconvergence", "oracle"};
  std::string line;
  std::size_t line_no = 0;
  std::size_t events = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    Value ev;
    try {
      ev = Value::parse(line);
    } catch (const std::exception& e) {
      return fail(path, line_no, std::string("bad JSON: ") + e.what());
    }
    if (!ev.is_object()) return fail(path, line_no, "line is not an object");
    const Value* time = ev.find("time");
    if (time == nullptr || !time->is_number() || time->as_double() < 0.0) {
      return fail(path, line_no, "missing/negative time");
    }
    const Value* kind = ev.find("kind");
    if (kind == nullptr || !kind->is_string()) return fail(path, line_no, "missing kind");
    if (kKinds.count(kind->as_string()) == 0) {
      return fail(path, line_no, "unknown kind '" + kind->as_string() + "'");
    }
    for (const char* field : {"as", "peer_as", "span"}) {
      const Value* v = ev.find(field);
      if (v == nullptr || !v->is_number()) {
        return fail(path, line_no, std::string("missing numeric ") + field);
      }
    }
    const Value* detail = ev.find("detail");
    if (detail == nullptr || !detail->is_string()) {
      return fail(path, line_no, "missing detail");
    }
    ++events;
  }
  std::printf("%s: OK (%zu events, jsonl)\n", path.c_str(), events);
  return true;
}

bool check_scenario(const std::string& path) {
  dbgp::scenario::Scenario scenario;
  try {
    scenario = dbgp::scenario::load_scenario(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
    return false;
  }
  if (scenario.dispute_wheel) {
    auto lint_fail = [&path](int line, const std::string& reason) {
      std::fprintf(stderr, "%s: line %d: %s\n", path.c_str(), line, reason.c_str());
      return false;
    };
    const auto& wheel = *scenario.dispute_wheel;
    const auto spoke_lo = static_cast<std::uint64_t>(wheel.first_spoke);
    const auto spoke_hi = spoke_lo + wheel.spokes;  // exclusive
    if (wheel.hub >= spoke_lo && wheel.hub < spoke_hi) {
      return lint_fail(wheel.line,
                       "dispute-wheel hub AS collides with the generated spoke range");
    }
    for (const auto& e : scenario.expectations) {
      const bool is_hub = e.asn == wheel.hub;
      const bool is_spoke = e.asn >= spoke_lo && e.asn < spoke_hi;
      if (!is_hub && !is_spoke) {
        return lint_fail(e.line, "expect names AS " + std::to_string(e.asn) +
                                     ", which the dispute wheel does not generate");
      }
      if (e.prefix != wheel.prefix) {
        return lint_fail(e.line, "expect names prefix " + e.prefix.to_string() +
                                     " but the wheel originates " +
                                     wheel.prefix.to_string());
      }
    }
    std::printf("%s: OK (dispute-wheel spokes=%zu fc-adoption=%.2f, %zu expectations)\n",
                path.c_str(), wheel.spokes, wheel.fc_adoption,
                scenario.expectations.size());
  } else {
    std::printf("%s: OK (scenario, %zu ASes, %zu expectations)\n", path.c_str(),
                scenario.ases.size(), scenario.expectations.size());
  }
  return true;
}

bool check_file(const std::string& path) {
  if (path.size() > 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0) {
    return check_jsonl(path);
  }
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".dbgp") == 0) {
    return check_scenario(path);
  }
  const Value doc = dbgp::util::json::parse_file(path);
  if (!doc.is_object()) return fail(path, 0, "top level is not an object");
  const Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail(path, 0, "missing traceEvents array");
  }

  // Open B spans per (pid, tid); open flow ids.
  std::map<std::pair<double, double>, std::vector<std::string>> open;
  std::set<double> flow_ids;
  double last_ts = 0.0;
  bool have_ts = false;
  std::size_t i = 0;
  for (const Value& ev : events->as_array()) {
    if (!ev.is_object()) return fail(path, i, "event is not an object");
    const Value* ph = ev.find("ph");
    if (ph == nullptr || !ph->is_string()) return fail(path, i, "missing ph");
    const std::string& phase = ph->as_string();
    const Value* pid = ev.find("pid");
    if (pid == nullptr || !pid->is_number()) return fail(path, i, "missing pid");

    if (phase == "M") {  // metadata: process-scoped entries carry no tid/ts
      ++i;
      continue;
    }
    const Value* tid = ev.find("tid");
    if (tid == nullptr || !tid->is_number()) return fail(path, i, "missing tid");
    const Value* ts = ev.find("ts");
    if (ts == nullptr || !ts->is_number()) return fail(path, i, "missing ts");
    if (have_ts && ts->as_double() < last_ts) {
      return fail(path, i, "ts not sorted (went backward)");
    }
    last_ts = ts->as_double();
    have_ts = true;

    const auto track = std::make_pair(pid->as_double(), tid->as_double());
    if (phase == "B" || phase == "E" || phase == "X" || phase == "i") {
      const Value* name = ev.find("name");
      if (name == nullptr || !name->is_string()) return fail(path, i, "missing name");
      if (phase == "B") {
        open[track].push_back(name->as_string());
      } else if (phase == "E") {
        auto& stack = open[track];
        if (stack.empty()) return fail(path, i, "E without matching B on track");
        stack.pop_back();
      } else if (phase == "X") {
        const Value* dur = ev.find("dur");
        if (dur == nullptr || !dur->is_number() || dur->as_double() < 0) {
          return fail(path, i, "X event without non-negative dur");
        }
      }
    } else if (phase == "s" || phase == "f") {
      const Value* id = ev.find("id");
      if (id == nullptr || !id->is_number()) return fail(path, i, "flow without id");
      if (phase == "s") {
        flow_ids.insert(id->as_double());
      } else if (flow_ids.count(id->as_double()) == 0) {
        return fail(path, i, "flow finish without matching start");
      }
    } else {
      return fail(path, i, "unknown phase '" + phase + "'");
    }
    ++i;
  }
  for (const auto& [track, stack] : open) {
    if (!stack.empty()) {
      return fail(path, i,
                  "unclosed B span '" + stack.back() + "' on tid " +
                      std::to_string(track.second));
    }
  }
  std::printf("%s: OK (%zu events)\n", path.c_str(), events->as_array().size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check <trace.json> [more.json ...]\n");
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      std::fprintf(stderr, "trace_check: unknown flag %s\n", argv[i]);
      std::fprintf(stderr, "usage: trace_check <trace.json> [more.json ...]\n");
      return 2;
    }
  }
  try {
    for (int i = 1; i < argc; ++i) {
      if (!check_file(argv[i])) return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
